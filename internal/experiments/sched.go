package experiments

import (
	"repro/internal/pool"
	"repro/internal/sim"
	"repro/internal/workload"
)

// The parallel run scheduler. Artifact generators keep their serial,
// deterministic assembly loops, but first *warm* the memo: they submit
// the batch of independent simulations they are about to collect to a
// worker pool sized by Options.Jobs. Because the memo is a singleflight
// cache (memo.go), warming is a pure performance hint — any run a
// generator forgets to warm is simply computed on first use, duplicate
// submissions coalesce onto one computation, and the serial collection
// pass that follows observes finished results in its own order. Every
// emitted table is therefore byte-identical for any worker count.

// workers resolves the effective worker count via the clamp shared with
// every other fan-out in the tree (pool.Workers): Jobs when positive,
// one worker per schedulable CPU when zero, and the serial path for
// negative values.
func (o Options) workers() int {
	return pool.Workers(o.Jobs)
}

// warm executes the batch on up to opt.workers() goroutines and waits
// for all of them (see pool.Warm). With a single worker it is a no-op:
// the serial collection path that follows computes each run itself,
// exactly as the pre-scheduler code did, so Jobs=1 is the old serial
// execution.
func warm(opt Options, batch []func()) {
	pool.Warm(opt.workers(), batch)
}

// mixRunBatch builds the warm batch for one run per (mix, policy) pair
// under cfg. Compose batches across configurations with append before a
// single warm call to maximise overlap.
func mixRunBatch(cfg sim.Config, opt Options, mixes []workload.Mix, pols ...namedPolicy) []func() {
	batch := make([]func(), 0, len(mixes)*len(pols))
	for _, mix := range mixes {
		for _, p := range pols {
			mix, p := mix, p
			batch = append(batch, func() { run(cfg, p.Name, p.New, mix, opt) })
		}
	}
	return batch
}

// warmMixRuns warms one run per (mix, policy) pair under cfg.
func warmMixRuns(cfg sim.Config, opt Options, mixes []workload.Mix, pols ...namedPolicy) {
	warm(opt, mixRunBatch(cfg, opt, mixes, pols...))
}

// threadedRunBatch builds the warm batch for coherent multi-threaded
// runs, one per (benchmark, policy) pair.
func threadedRunBatch(cfg sim.Config, opt Options, benches []workload.Benchmark, pols ...namedPolicy) []func() {
	batch := make([]func(), 0, len(benches)*len(pols))
	for _, b := range benches {
		for _, p := range pols {
			b, p := b, p
			batch = append(batch, func() { runThreaded(cfg, p.Name, p.New, b, opt) })
		}
	}
	return batch
}

// Baseline policy handles shared by the warm batches; the factories are
// stateless, so the values can be reused across goroutines.
func noniPol() namedPolicy { return namedPolicy{"noni", Noni()} }
func exPol() namedPolicy   { return namedPolicy{"ex", Ex()} }
