package experiments

import (
	"fmt"
	"os"
	"reflect"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/sim"
	"repro/internal/workload"
)

func TestOptionsWorkers(t *testing.T) {
	cases := []struct {
		jobs, want int
	}{
		{jobs: -1, want: 1}, // negative is a caller bug: clamp to serial
		{jobs: 0, want: runtime.GOMAXPROCS(0)},
		{jobs: 1, want: 1},
		{jobs: 3, want: 3},
		{jobs: 8, want: 8},
	}
	for _, c := range cases {
		if got := (Options{Jobs: c.jobs}).workers(); got != c.want {
			t.Errorf("Jobs=%d workers = %d, want %d", c.jobs, got, c.want)
		}
	}
}

// TestDeterminismAcrossJobs regenerates every registry artifact serially
// and on an 8-worker pool and requires identical tables: the scheduler
// must be invisible in the output. Set LAP_DETERMINISM_SCALE=quick to run
// the comparison at the Quick() scale instead of the reduced test scale.
// Under -race the sweep narrows to a subset that still covers every
// scheduler path (see race_on_test.go).
func TestDeterminismAcrossJobs(t *testing.T) {
	opt := Options{Accesses: 20_000, Seed: 2016, RandomMixes: 2, DuelPeriod: 40_000}
	ids := Order()
	if raceEnabled {
		// Mix warm batches (table3/fig14) and threaded warm batches
		// (fig20) cover every scheduler path; the full registry would
		// take tens of minutes under the detector's slowdown.
		ids = []string{"table3", "fig14", "fig20"}
		opt.Accesses = 8_000
		opt.RandomMixes = 1
		t.Logf("race detector on: comparing subset %v at %d accesses", ids, opt.Accesses)
	}
	if os.Getenv("LAP_DETERMINISM_SCALE") == "quick" {
		opt = Quick()
		ids = Order()
	}

	generate := func(jobs int) map[string]*Table {
		ResetMemo()
		o := opt
		o.Jobs = jobs
		reg := Registry(o)
		out := make(map[string]*Table, len(reg))
		for _, id := range ids {
			out[id] = reg[id]()
		}
		return out
	}
	serial := generate(1)
	parallel := generate(8)
	for _, id := range ids {
		s, p := serial[id], parallel[id]
		if !reflect.DeepEqual(s.Header, p.Header) {
			t.Errorf("%s: headers differ between Jobs=1 and Jobs=8", id)
		}
		if !reflect.DeepEqual(s.Rows, p.Rows) {
			t.Errorf("%s: rows differ between Jobs=1 and Jobs=8\nserial:   %v\nparallel: %v",
				id, s.Rows, p.Rows)
		}
		if !reflect.DeepEqual(s.Notes, p.Notes) {
			t.Errorf("%s: notes differ between Jobs=1 and Jobs=8", id)
		}
	}
}

// TestSingleflightSharesComputation races many goroutines on one fresh
// key and requires exactly one compute, with every caller observing its
// result.
func TestSingleflightSharesComputation(t *testing.T) {
	ResetMemo()
	key := memoKey{Policy: "singleflight-test", Seed: 42}
	var computes atomic.Int64
	var release = make(chan struct{})
	const callers = 32
	results := make([]sim.Result, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			results[i] = memo.Do(key, func() sim.Result {
				<-release // hold the latch so duplicates must wait
				computes.Add(1)
				return sim.Result{Policy: "only-once"}
			})
		}()
	}
	close(release)
	wg.Wait()
	if n := computes.Load(); n != 1 {
		t.Fatalf("compute ran %d times, want 1", n)
	}
	for i, r := range results {
		if r.Policy != "only-once" {
			t.Fatalf("caller %d observed %+v", i, r)
		}
	}
	if memo.Len() != 1 {
		t.Fatalf("memo size = %d, want 1", memo.Len())
	}
}

// TestMemoHammer drives duplicate keys and concurrent resets through the
// memo; it exists chiefly for go test -race, which verifies the memo's
// locking discipline end to end.
func TestMemoHammer(t *testing.T) {
	ResetMemo()
	const (
		goroutines = 16
		iterations = 200
		keys       = 7
	)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iterations; i++ {
				k := memoKey{Policy: "hammer", Seed: uint64(i % keys)}
				want := fmt.Sprintf("hammer-%d", i%keys)
				res := memo.Do(k, func() sim.Result {
					return sim.Result{Policy: want}
				})
				if res.Policy != want {
					t.Errorf("key %d returned result for %q", i%keys, res.Policy)
					return
				}
				if i%50 == 0 && g == 0 {
					ResetMemo()
				}
			}
		}()
	}
	wg.Wait()
}

// TestMemoPanicDoesNotPoison ensures a panicking compute neither
// deadlocks waiters nor leaves a zero-value result cached.
func TestMemoPanicDoesNotPoison(t *testing.T) {
	ResetMemo()
	key := memoKey{Policy: "panic-test"}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("expected panic to propagate")
			}
		}()
		memo.Do(key, func() sim.Result { panic("boom") })
	}()
	if memo.Len() != 0 {
		t.Fatalf("poisoned entry survived: memo size = %d", memo.Len())
	}
	res := memo.Do(key, func() sim.Result { return sim.Result{Policy: "retry"} })
	if res.Policy != "retry" {
		t.Fatalf("retry after panic returned %+v", res)
	}
}

// TestWarmPopulatesMemo checks that a warmed batch leaves every run
// cached, so the collection pass is pure recall.
func TestWarmPopulatesMemo(t *testing.T) {
	ResetMemo()
	opt := Options{Accesses: 10_000, Seed: 9, RandomMixes: 1, DuelPeriod: 40_000, Jobs: 4}
	cfg := sim.DefaultConfig()
	mixes := workload.TableIII()[:2]
	warmMixRuns(cfg, opt, mixes, noniPol(), exPol())
	if got, want := memo.Len(), len(mixes)*2; got != want {
		t.Fatalf("memo size after warm = %d, want %d", got, want)
	}
	before := Stats()
	run(cfg, "noni", Noni(), mixes[0], opt)
	after := Stats()
	if after.Computed != before.Computed {
		t.Error("collection after warm recomputed a run")
	}
	if after.Recalled != before.Recalled+1 {
		t.Error("collection after warm did not count a recall")
	}
}

// TestWarmSerialIsNoop: with one worker the warm pass must not execute
// anything — Jobs=1 is the exact pre-scheduler serial path.
func TestWarmSerialIsNoop(t *testing.T) {
	ran := false
	warm(Options{Jobs: 1}, []func(){func() { ran = true }})
	if ran {
		t.Fatal("warm executed its batch with Jobs=1")
	}
}

// TestMemoKeyConfigFields walks sim.Config and rejects any field kind
// that would compare by identity (pointers) or not compile as a map key
// at all. The compiler already rejects non-comparable kinds because
// memoKey embeds Config by value; this test catches pointers, which
// compare but would split memo entries that are semantically equal.
func TestMemoKeyConfigFields(t *testing.T) {
	var check func(path string, tp reflect.Type)
	check = func(path string, tp reflect.Type) {
		switch tp.Kind() {
		case reflect.Ptr, reflect.Slice, reflect.Map, reflect.Chan,
			reflect.Func, reflect.Interface, reflect.UnsafePointer:
			t.Errorf("%s has kind %s: unusable as part of the memo key", path, tp.Kind())
		case reflect.Struct:
			for i := 0; i < tp.NumField(); i++ {
				f := tp.Field(i)
				check(path+"."+f.Name, f.Type)
			}
		case reflect.Array:
			check(path+"[]", tp.Elem())
		}
	}
	check("sim.Config", reflect.TypeOf(sim.Config{}))
}
