package experiments

import (
	"repro/internal/sim"
	"repro/internal/workload"
)

// Motivation experiments (Section II): Figure 2 (no dominant traditional
// policy), Figure 4 (loop-block distribution), Figure 6 (redundant LLC
// data-fills). All run four duplicate copies of each SPEC surrogate, as
// the paper does.

// duplicateMixes builds the per-benchmark duplicate mixes the motivation
// figures run (four copies of each SPEC surrogate, as the paper does).
func duplicateMixes(benches []workload.Benchmark, cores int) []workload.Mix {
	mixes := make([]workload.Mix, len(benches))
	for i, b := range benches {
		mixes[i] = workload.Duplicate(b.Name, cores)
	}
	return mixes
}

// Fig2Row holds one benchmark's Figure 2 measurements.
type Fig2Row struct {
	Bench string
	// SRAMExOverNoni and STTExOverNoni are exclusive-policy EPI
	// normalised to non-inclusive, for SRAM and STT-RAM LLCs (Fig. 2a/b).
	SRAMExOverNoni float64
	STTExOverNoni  float64
	// Mrel and Wrel are the exclusive policy's LLC misses and writes
	// relative to non-inclusive (Fig. 2c).
	Mrel float64
	Wrel float64
}

// Fig2Data computes the Figure 2 series.
func Fig2Data(opt Options) []Fig2Row {
	sttCfg := sim.DefaultConfig()
	sramCfg := sttCfg.WithSRAML3()
	mixes := duplicateMixes(workload.SPEC(), sttCfg.Cores)
	warm(opt, append(
		mixRunBatch(sttCfg, opt, mixes, noniPol(), exPol()),
		mixRunBatch(sramCfg, opt, mixes, noniPol(), exPol())...))
	var rows []Fig2Row
	for i, b := range workload.SPEC() {
		mix := mixes[i]
		nSTT := run(sttCfg, "noni", Noni(), mix, opt)
		eSTT := run(sttCfg, "ex", Ex(), mix, opt)
		nSRAM := run(sramCfg, "noni", Noni(), mix, opt)
		eSRAM := run(sramCfg, "ex", Ex(), mix, opt)
		rows = append(rows, Fig2Row{
			Bench:          b.Name,
			SRAMExOverNoni: ratio(eSRAM.EPI.Total(), nSRAM.EPI.Total()),
			STTExOverNoni:  ratio(eSTT.EPI.Total(), nSTT.EPI.Total()),
			Mrel:           ratio(float64(eSTT.Met.L3Misses), float64(nSTT.Met.L3Misses)),
			Wrel:           ratio(float64(eSTT.Met.WritesToLLC()), float64(nSTT.Met.WritesToLLC())),
		})
	}
	return rows
}

// Fig2 renders Figure 2.
func Fig2(opt Options) *Table {
	t := &Table{
		ID:     "Fig. 2",
		Title:  "EPI of exclusive normalised to non-inclusive (SRAM vs STT-RAM) and relative misses/writes",
		Header: []string{"benchmark", "SRAM ex/noni", "STT ex/noni", "rel. misses", "rel. writes"},
		Notes: []string{
			"paper shape: SRAM always favours exclusion; STT-RAM favours exclusion only when relative writes are low",
		},
	}
	for _, r := range Fig2Data(opt) {
		t.AddRow(r.Bench, f2(r.SRAMExOverNoni), f2(r.STTExOverNoni), f2(r.Mrel), f2(r.Wrel))
	}
	return t
}

// Fig4Row holds one benchmark's loop-block distribution.
type Fig4Row struct {
	Bench string
	// CTC1, CTCMid, CTCHigh are the loop-block shares of L2 evictions by
	// clean-trip count (==1, 2-4, >=5).
	CTC1, CTCMid, CTCHigh float64
}

// Total is the benchmark's overall loop-block fraction.
func (r Fig4Row) Total() float64 { return r.CTC1 + r.CTCMid + r.CTCHigh }

// Fig4Data computes the Figure 4 series using the profiler under the
// paper's baseline (non-inclusive) hierarchy.
func Fig4Data(opt Options) []Fig4Row {
	cfg := sim.DefaultConfig()
	cfg.Profile = true
	mixes := duplicateMixes(workload.SPEC(), cfg.Cores)
	warmMixRuns(cfg, opt, mixes, noniPol())
	var rows []Fig4Row
	for i, b := range workload.SPEC() {
		mix := mixes[i]
		res := run(cfg, "noni", Noni(), mix, opt)
		c1, cm, ch := res.Prof.CTCBuckets()
		rows = append(rows, Fig4Row{Bench: b.Name, CTC1: c1, CTCMid: cm, CTCHigh: ch})
	}
	return rows
}

// Fig4 renders Figure 4.
func Fig4(opt Options) *Table {
	t := &Table{
		ID:     "Fig. 4",
		Title:  "Loop-block distribution (share of L2 evictions) by clean trip count",
		Header: []string{"benchmark", "CTC=1", "1<CTC<5", "CTC>=5", "total"},
		Notes: []string{
			"paper shape: omnetpp/xalancbmk > 60%, bzip2 > 20%, most loop-blocks have CTC >= 5",
		},
	}
	for _, r := range Fig4Data(opt) {
		t.AddRow(r.Bench, pct(r.CTC1), pct(r.CTCMid), pct(r.CTCHigh), pct(r.Total()))
	}
	return t
}

// Fig6Row holds one benchmark's redundant-fill fraction.
type Fig6Row struct {
	Bench string
	// RedundantFillFrac is the share of non-inclusive LLC data-fills that
	// are modified in the upper levels before reuse.
	RedundantFillFrac float64
}

// Fig6Data computes the Figure 6 series.
func Fig6Data(opt Options) []Fig6Row {
	cfg := sim.DefaultConfig()
	cfg.Profile = true
	mixes := duplicateMixes(workload.SPEC(), cfg.Cores)
	warmMixRuns(cfg, opt, mixes, noniPol())
	var rows []Fig6Row
	for i, b := range workload.SPEC() {
		mix := mixes[i]
		res := run(cfg, "noni", Noni(), mix, opt)
		rows = append(rows, Fig6Row{Bench: b.Name, RedundantFillFrac: res.Prof.RedundantFillFrac()})
	}
	return rows
}

// Fig6 renders Figure 6.
func Fig6(opt Options) *Table {
	t := &Table{
		ID:     "Fig. 6",
		Title:  "Redundant LLC data-fills under the non-inclusive policy",
		Header: []string{"benchmark", "redundant fills"},
		Notes: []string{
			"paper shape: libquantum > 80%; astar/GemsFDTD/mcf high; average ~9.6% over mixes",
		},
	}
	for _, r := range Fig6Data(opt) {
		t.AddRow(r.Bench, pct(r.RedundantFillFrac))
	}
	return t
}
