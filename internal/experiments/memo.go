package experiments

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/checkpoint"
	"repro/internal/core"
	"repro/internal/fault"
	memocache "repro/internal/memo"
	"repro/internal/obs"
	"repro/internal/obs/journal"
	otrace "repro/internal/obs/trace"
	"repro/internal/pool"
	"repro/internal/sample"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Experiments share many (config, policy, mix) simulation runs — e.g. the
// non-inclusive baseline appears in every figure. A process-wide memo
// avoids recomputing them when cmd/lapexp regenerates several artifacts in
// one invocation. Keys include every knob that affects a run.
//
// Under the parallel scheduler (sched.go) the memo is also the
// coordination point: it is a singleflight cache. The first request for a
// key computes the run while concurrent duplicates block on a per-key
// latch, so no simulation is ever executed twice no matter how many
// workers race for it. The machinery lives in internal/memo (promoted
// there so lapserved can share it); this file keeps the experiment-shaped
// key and the package-level wrappers so artifact generators and their
// determinism tests are unaffected by the extraction.

// memoKey identifies one simulation run. sim.Config is embedded by value,
// so the compiler rejects this type as a map key the moment Config gains
// a non-comparable (slice/map/func) field — the memo breaks loudly at
// build time instead of silently keying every run differently, which the
// old fmt.Sprintf("%+v") fingerprint could not guarantee.
// TestMemoKeyConfigFields additionally rejects pointer fields, which
// would compare by identity rather than by value.
type memoKey struct {
	Cfg        sim.Config
	Policy     string
	Mix        string
	Threaded   bool
	Accesses   uint64
	Seed       uint64
	DuelPeriod uint64
}

// runKey builds the memo key. Options contributes only the knobs that
// change a run's outcome; scheduling knobs (Jobs, Banks) are deliberately
// excluded — and Config.Banks normalised away — so serial and parallel
// invocations share entries.
func runKey(cfg sim.Config, policy string, mix workload.Mix, threaded bool, opt Options) memoKey {
	cfg.Banks = 0
	cfg.CheckpointEvery = 0
	return memoKey{
		Cfg:        cfg,
		Policy:     policy,
		Mix:        mix.Name + "[" + strings.Join(mix.Members, ",") + "]",
		Threaded:   threaded,
		Accesses:   opt.Accesses,
		Seed:       opt.Seed,
		DuelPeriod: opt.DuelPeriod,
	}
}

// memo is the process-wide singleflight run cache. Artifact sweeps are
// finite (one lapexp invocation touches a bounded set of runs), so the
// cache is unbounded here; lapserved builds its own bounded instance.
var memo = memocache.New[memoKey, sim.Result](0)

// runE executes (or recalls) one simulation, with the run's failure
// domain contained to its own memo cell: a panicking simulation becomes
// a typed *pool.RunError, a configuration error propagates as-is, and
// either way nothing is cached (a retry recomputes). policyName must
// uniquely identify the controller the factory builds.
func runE(cfg sim.Config, policyName string, ctrl sim.Controller, mix workload.Mix, opt Options) (sim.Result, error) {
	if opt.Banks > 0 {
		cfg.Banks = opt.Banks
	}
	if opt.Checkpoints != nil && opt.CheckpointEvery > 0 {
		cfg.CheckpointEvery = opt.CheckpointEvery
	}
	if sampleEligible(cfg, policyName, opt) {
		cfg.SampleInterval = opt.SampleInterval
		cfg.SampleClusters = opt.SampleClusters
		cfg.SampleWarmup = opt.SampleWarmup
	}
	key := runKey(cfg, policyName, mix, false, opt)
	cell := key.Mix + "|" + policyName
	ctx, sp := cellSpan(opt, cell)
	res, err := memo.DoErr(ctx, key, cellObserved(opt, cell, func() (res sim.Result, err error) {
		defer func() {
			if r := recover(); r != nil {
				err = pool.Recovered(cell, r)
			}
		}()
		if err := fault.Inject(fault.PointExpRun, cell); err != nil {
			return sim.Result{}, err
		}
		if cfg.SampleInterval > 0 {
			prof, err := profileFor(cfg, mix, opt)
			if err != nil {
				return sim.Result{}, err
			}
			sr, err := sample.Run(cfg, ctrl(), prof)
			return sr.Sim, err
		}
		if opt.Checkpoints != nil && cfg.CheckpointEvery > 0 {
			if len(mix.Members) != cfg.Cores {
				return sim.Result{}, fmt.Errorf("experiments: mix %s has %d members for %d cores", mix.Name, len(mix.Members), cfg.Cores)
			}
			// The policy descriptor must pin everything the controller
			// factory bakes in beyond the name; DuelPeriod is the one
			// knob registry closures vary.
			wl := checkpoint.MixWorkload(mix.Name, mix.Members, cfg.Cores, opt.Accesses, opt.Seed)
			pol := fmt.Sprintf("%s|duel=%d", policyName, opt.DuelPeriod)
			return checkpoint.ResumableRun(opt.Checkpoints, cfg, wl, pol, ctrl, func() ([]trace.Source, error) {
				return sim.MixSources(mix, opt.Accesses, opt.Seed)
			})
		}
		return sim.RunMix(cfg, ctrl, mix, opt.Accesses, opt.Seed)
	}))
	sp.End()
	return res, err
}

// cellObserved wraps one cell's compute with journal lifecycle events.
// Only actual executions emit (the wrapper sits inside the memo, so
// recalls and latch-waits stay silent); a nil journal returns compute
// unwrapped.
func cellObserved(opt Options, cell string, compute func() (sim.Result, error)) func() (sim.Result, error) {
	if opt.Journal == nil {
		return compute
	}
	return func() (sim.Result, error) {
		opt.Journal.Emit(journal.Event{Kind: "cell.start", Run: cell})
		res, err := compute()
		if err != nil {
			opt.Journal.Emit(journal.Event{Kind: "cell.failed", Run: cell, Msg: err.Error()})
		} else {
			opt.Journal.Emit(journal.Event{Kind: "cell.finish", Run: cell,
				Fields: journal.F("cycles", res.Cycles, "l3_misses", res.Met.L3Misses)})
		}
		return res, err
	}
}

// sampleEligible reports whether sampled mode applies to this run: the
// sweep asked for it, the policy's registry entry allows it (predictor
// policies whose state cannot survive interval jumps are exact-only),
// and the configuration has none of the features sampling cannot
// represent (cross-interval coherent state, the redundancy profiler, or
// explicit warmup/length bounds). Ineligible runs silently stay exact
// so artifact code never has to special-case. policyName may be an
// experiment-local display name ("noni", "LAP+Winv"); names the
// registry does not know get no policy-level restriction.
func sampleEligible(cfg sim.Config, policyName string, opt Options) bool {
	if info, ok := core.LookupPolicy(policyName); ok && !info.SampledEligible {
		return false
	}
	return opt.SampleInterval > 0 &&
		!cfg.Coherent && !cfg.TrackMOESI && !cfg.Profile &&
		cfg.WarmupAccessesPerCore == 0 && cfg.MaxAccessesPerCore == 0
}

// profileKey identifies one functional profile. Policy is absent —
// profiles are policy-independent — and the cluster/warmup knobs are
// normalised away: they shape the replay, not the profile.
type profileKey struct {
	Cfg      sim.Config
	Mix      string
	Accesses uint64
	Seed     uint64
}

// profiles caches one functional profile per (config, mix, scale); a
// Fig. 14-style sweep then pays one profiling pass for its six-plus
// policies per mix.
var profiles = memocache.New[profileKey, *sample.Profile](0)

func profileFor(cfg sim.Config, mix workload.Mix, opt Options) (*sample.Profile, error) {
	kcfg := cfg
	kcfg.Banks = 0
	kcfg.SampleClusters = 0
	kcfg.SampleWarmup = 0
	key := profileKey{
		Cfg:      kcfg,
		Mix:      mix.Name + "[" + strings.Join(mix.Members, ",") + "]",
		Accesses: opt.Accesses,
		Seed:     opt.Seed,
	}
	return profiles.DoErr(context.Background(), key, func() (*sample.Profile, error) {
		build := func() (*sample.Profile, error) {
			srcs, err := sim.MixSources(mix, opt.Accesses, opt.Seed)
			if err != nil {
				return nil, err
			}
			return sample.BuildProfile(cfg, srcs, cfg.SampleInterval)
		}
		if opt.Checkpoints == nil {
			return build()
		}
		// With a store attached, a digest-matching persisted profile
		// replaces the functional pass (replay positions are rebuilt from
		// fresh sources); a freshly built one is persisted for the next
		// process. Store failures degrade to build().
		ck := checkpoint.ProfileKey(kcfg,
			checkpoint.MixWorkload(mix.Name, mix.Members, cfg.Cores, opt.Accesses, opt.Seed))
		codec := checkpoint.ProfileCodec[*sample.Profile]{
			Encode: func(p *sample.Profile) []byte { return p.Encode() },
			Decode: func(b []byte) (*sample.Profile, error) {
				srcs, err := sim.MixSources(mix, opt.Accesses, opt.Seed)
				if err != nil {
					return nil, err
				}
				return sample.DecodeProfile(b, srcs)
			},
		}
		prof, _, err := checkpoint.LoadOrBuildProfile(opt.Checkpoints, ck,
			func(p *sample.Profile) uint64 { return uint64(len(p.Intervals)) }, codec, build)
		return prof, err
	})
}

// cellSpan opens a per-cell root span on opt.Trace (nil-safe, zero cost
// when tracing is off). The span's ctx flows into the memo, so the
// recorded timeline distinguishes computes from recalls per cell.
func cellSpan(opt Options, cell string) (context.Context, *otrace.Span) {
	ctx, sp := opt.Trace.Root(context.Background(), "cell", otrace.Str("cell", cell))
	if sp != nil {
		opt.Trace.NameTrack(otrace.PidWall, sp.ID(), cell)
	}
	return ctx, sp
}

// run is runE for the static experiment definitions of this package,
// where a failing run is a bug: it panics with the cell label so the
// per-artifact containment in cmd/lapexp can report which run died.
func run(cfg sim.Config, policyName string, ctrl sim.Controller, mix workload.Mix, opt Options) sim.Result {
	res, err := runE(cfg, policyName, ctrl, mix, opt)
	if err != nil {
		panic(fmt.Sprintf("experiments: run %s[%s]|%s: %v",
			mix.Name, strings.Join(mix.Members, ","), policyName, err))
	}
	return res
}

// runThreadedE executes (or recalls) one coherent multi-threaded run,
// with the same failure containment as runE.
func runThreadedE(cfg sim.Config, policyName string, ctrl sim.Controller, b workload.Benchmark, opt Options) (sim.Result, error) {
	if opt.Banks > 0 {
		cfg.Banks = opt.Banks
	}
	key := runKey(cfg, policyName, workload.Mix{Name: b.Name}, true, opt)
	cell := key.Mix + "|" + policyName
	ctx, sp := cellSpan(opt, cell)
	res, err := memo.DoErr(ctx, key, cellObserved(opt, cell, func() (res sim.Result, err error) {
		defer func() {
			if r := recover(); r != nil {
				err = pool.Recovered(cell, r)
			}
		}()
		if err := fault.Inject(fault.PointExpRun, cell); err != nil {
			return sim.Result{}, err
		}
		return sim.RunThreaded(cfg, ctrl, b, opt.Accesses, opt.Seed), nil
	}))
	sp.End()
	return res, err
}

// runThreaded is run's panicking counterpart for threaded runs.
func runThreaded(cfg sim.Config, policyName string, ctrl sim.Controller, b workload.Benchmark, opt Options) sim.Result {
	res, err := runThreadedE(cfg, policyName, ctrl, b, opt)
	if err != nil {
		panic(fmt.Sprintf("experiments: threaded run %s|%s: %v", b.Name, policyName, err))
	}
	return res
}

// RegisterMetrics exposes the process-wide run memo and worker-pool
// counters on an optional obs registry under namespace ns (cmd/lapexp
// passes "lapexp", so its -timings JSON and a future /metrics share
// series names). A nil registry is a no-op.
func RegisterMetrics(r *obs.Registry, ns string) {
	memo.Register(r, ns+"_memo")
	profiles.Register(r, ns+"_profile_memo")
	pool.Register(r, ns+"_pool")
	sample.RegisterMetrics(r, ns)
}

// ResetMemo clears the run cache (tests and benchmarks use it to bound
// memory and force recomputation). See memo.Cache.Reset for the contract
// under concurrency; the Stats counters survive a reset.
func ResetMemo() {
	memo.Reset()
	profiles.Reset()
}

// MemoStats counts run-cache activity since process start: Computed is
// the number of simulations actually executed, Recalled the number of
// requests served from the cache (including requests that waited on an
// in-flight computation), Failed the number of runs that errored or
// panicked (and were not cached). ResetMemo does not reset the counters,
// so deltas around a code region meter its simulation cost (this is how
// cmd/lapexp -timings derives per-artifact runs/sec).
type MemoStats struct {
	Computed uint64 `json:"computed"`
	Recalled uint64 `json:"recalled"`
	Failed   uint64 `json:"failed,omitempty"`
}

// Stats snapshots the memo counters.
func Stats() MemoStats {
	s := memo.Stats()
	return MemoStats{Computed: s.Computed, Recalled: s.Recalled, Failed: s.Failed}
}
