package experiments

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/workload"
)

// Experiments share many (config, policy, mix) simulation runs — e.g. the
// non-inclusive baseline appears in every figure. A process-wide memo
// avoids recomputing them when cmd/lapexp regenerates several artifacts in
// one invocation. Keys include every knob that affects a run.

var memo = map[string]sim.Result{}

// runKey builds the memo key. Config is a plain value struct, so %+v is a
// complete fingerprint.
func runKey(cfg sim.Config, policy string, mix workload.Mix, opt Options) string {
	return fmt.Sprintf("%+v|%s|%s%v|%d|%d|%d", cfg, policy, mix.Name, mix.Members, opt.Accesses, opt.Seed, opt.DuelPeriod)
}

// run executes (or recalls) one simulation. policyName must uniquely
// identify the controller the factory builds.
func run(cfg sim.Config, policyName string, ctrl sim.Controller, mix workload.Mix, opt Options) sim.Result {
	key := runKey(cfg, policyName, mix, opt)
	if r, ok := memo[key]; ok {
		return r
	}
	r := mustRun(cfg, ctrl, mix, opt)
	memo[key] = r
	return r
}

// runThreaded executes (or recalls) one coherent multi-threaded run.
func runThreaded(cfg sim.Config, policyName string, ctrl sim.Controller, b workload.Benchmark, opt Options) sim.Result {
	key := runKey(cfg, policyName+"|mt", workload.Mix{Name: b.Name}, opt)
	if r, ok := memo[key]; ok {
		return r
	}
	r := sim.RunThreaded(cfg, ctrl, b, opt.Accesses, opt.Seed)
	memo[key] = r
	return r
}

// ResetMemo clears the run cache (tests use it to bound memory).
func ResetMemo() { memo = map[string]sim.Result{} }
