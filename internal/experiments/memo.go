package experiments

import (
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/sim"
	"repro/internal/workload"
)

// Experiments share many (config, policy, mix) simulation runs — e.g. the
// non-inclusive baseline appears in every figure. A process-wide memo
// avoids recomputing them when cmd/lapexp regenerates several artifacts in
// one invocation. Keys include every knob that affects a run.
//
// Under the parallel scheduler (sched.go) the memo is also the
// coordination point: it is a singleflight cache. The first request for a
// key computes the run while concurrent duplicates block on a per-key
// latch, so no simulation is ever executed twice no matter how many
// workers race for it.

// memoKey identifies one simulation run. sim.Config is embedded by value,
// so the compiler rejects this type as a map key the moment Config gains
// a non-comparable (slice/map/func) field — the memo breaks loudly at
// build time instead of silently keying every run differently, which the
// old fmt.Sprintf("%+v") fingerprint could not guarantee.
// TestMemoKeyConfigFields additionally rejects pointer fields, which
// would compare by identity rather than by value.
type memoKey struct {
	Cfg        sim.Config
	Policy     string
	Mix        string
	Threaded   bool
	Accesses   uint64
	Seed       uint64
	DuelPeriod uint64
}

// runKey builds the memo key. Options contributes only the knobs that
// change a run's outcome; scheduling knobs (Jobs) are deliberately
// excluded so serial and parallel invocations share entries.
func runKey(cfg sim.Config, policy string, mix workload.Mix, threaded bool, opt Options) memoKey {
	return memoKey{
		Cfg:        cfg,
		Policy:     policy,
		Mix:        mix.Name + "[" + strings.Join(mix.Members, ",") + "]",
		Threaded:   threaded,
		Accesses:   opt.Accesses,
		Seed:       opt.Seed,
		DuelPeriod: opt.DuelPeriod,
	}
}

// memoEntry is one key's slot; done is closed once res is valid.
type memoEntry struct {
	done chan struct{}
	res  sim.Result
}

// runMemo is the concurrency-safe singleflight run cache.
type runMemo struct {
	mu      sync.Mutex
	entries map[memoKey]*memoEntry

	computed atomic.Uint64
	recalled atomic.Uint64
}

var memo = &runMemo{entries: map[memoKey]*memoEntry{}}

// do returns the memoised result for key, computing it at most once per
// cache generation: the first caller runs compute while concurrent
// duplicates block on the entry's latch and share its result.
func (m *runMemo) do(key memoKey, compute func() sim.Result) sim.Result {
	m.mu.Lock()
	if e, ok := m.entries[key]; ok {
		m.mu.Unlock()
		<-e.done
		m.recalled.Add(1)
		return e.res
	}
	e := &memoEntry{done: make(chan struct{})}
	m.entries[key] = e
	m.mu.Unlock()

	completed := false
	defer func() {
		if !completed {
			// compute panicked: drop the poisoned entry so a retry after a
			// recover would recompute rather than observe a zero Result.
			m.mu.Lock()
			if m.entries[key] == e {
				delete(m.entries, key)
			}
			m.mu.Unlock()
		}
		close(e.done)
	}()
	e.res = compute()
	completed = true
	m.computed.Add(1)
	return e.res
}

// size reports the number of cached entries.
func (m *runMemo) size() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.entries)
}

// run executes (or recalls) one simulation. policyName must uniquely
// identify the controller the factory builds.
func run(cfg sim.Config, policyName string, ctrl sim.Controller, mix workload.Mix, opt Options) sim.Result {
	return memo.do(runKey(cfg, policyName, mix, false, opt), func() sim.Result {
		return mustRun(cfg, ctrl, mix, opt)
	})
}

// runThreaded executes (or recalls) one coherent multi-threaded run.
func runThreaded(cfg sim.Config, policyName string, ctrl sim.Controller, b workload.Benchmark, opt Options) sim.Result {
	return memo.do(runKey(cfg, policyName, workload.Mix{Name: b.Name}, true, opt), func() sim.Result {
		return sim.RunThreaded(cfg, ctrl, b, opt.Accesses, opt.Seed)
	})
}

// ResetMemo clears the run cache (tests and benchmarks use it to bound
// memory and force recomputation). Contract under concurrency: the cache
// is swapped under the memo lock, so it is safe to call with runs in
// flight — those computations complete and deliver results to callers
// already waiting on their latch, but become invisible to requests that
// start after the reset, which recompute into the fresh cache. The
// Stats counters are cumulative and survive a reset.
func ResetMemo() {
	memo.mu.Lock()
	memo.entries = map[memoKey]*memoEntry{}
	memo.mu.Unlock()
}

// MemoStats counts run-cache activity since process start: Computed is
// the number of simulations actually executed, Recalled the number of
// requests served from the cache (including requests that waited on an
// in-flight computation). ResetMemo does not reset the counters, so
// deltas around a code region meter its simulation cost (this is how
// cmd/lapexp -timings derives per-artifact runs/sec).
type MemoStats struct {
	Computed uint64 `json:"computed"`
	Recalled uint64 `json:"recalled"`
}

// Stats snapshots the memo counters.
func Stats() MemoStats {
	return MemoStats{Computed: memo.computed.Load(), Recalled: memo.recalled.Load()}
}
