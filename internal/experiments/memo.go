package experiments

import (
	"strings"

	memocache "repro/internal/memo"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Experiments share many (config, policy, mix) simulation runs — e.g. the
// non-inclusive baseline appears in every figure. A process-wide memo
// avoids recomputing them when cmd/lapexp regenerates several artifacts in
// one invocation. Keys include every knob that affects a run.
//
// Under the parallel scheduler (sched.go) the memo is also the
// coordination point: it is a singleflight cache. The first request for a
// key computes the run while concurrent duplicates block on a per-key
// latch, so no simulation is ever executed twice no matter how many
// workers race for it. The machinery lives in internal/memo (promoted
// there so lapserved can share it); this file keeps the experiment-shaped
// key and the package-level wrappers so artifact generators and their
// determinism tests are unaffected by the extraction.

// memoKey identifies one simulation run. sim.Config is embedded by value,
// so the compiler rejects this type as a map key the moment Config gains
// a non-comparable (slice/map/func) field — the memo breaks loudly at
// build time instead of silently keying every run differently, which the
// old fmt.Sprintf("%+v") fingerprint could not guarantee.
// TestMemoKeyConfigFields additionally rejects pointer fields, which
// would compare by identity rather than by value.
type memoKey struct {
	Cfg        sim.Config
	Policy     string
	Mix        string
	Threaded   bool
	Accesses   uint64
	Seed       uint64
	DuelPeriod uint64
}

// runKey builds the memo key. Options contributes only the knobs that
// change a run's outcome; scheduling knobs (Jobs) are deliberately
// excluded so serial and parallel invocations share entries.
func runKey(cfg sim.Config, policy string, mix workload.Mix, threaded bool, opt Options) memoKey {
	return memoKey{
		Cfg:        cfg,
		Policy:     policy,
		Mix:        mix.Name + "[" + strings.Join(mix.Members, ",") + "]",
		Threaded:   threaded,
		Accesses:   opt.Accesses,
		Seed:       opt.Seed,
		DuelPeriod: opt.DuelPeriod,
	}
}

// memo is the process-wide singleflight run cache. Artifact sweeps are
// finite (one lapexp invocation touches a bounded set of runs), so the
// cache is unbounded here; lapserved builds its own bounded instance.
var memo = memocache.New[memoKey, sim.Result](0)

// run executes (or recalls) one simulation. policyName must uniquely
// identify the controller the factory builds.
func run(cfg sim.Config, policyName string, ctrl sim.Controller, mix workload.Mix, opt Options) sim.Result {
	return memo.Do(runKey(cfg, policyName, mix, false, opt), func() sim.Result {
		return mustRun(cfg, ctrl, mix, opt)
	})
}

// runThreaded executes (or recalls) one coherent multi-threaded run.
func runThreaded(cfg sim.Config, policyName string, ctrl sim.Controller, b workload.Benchmark, opt Options) sim.Result {
	return memo.Do(runKey(cfg, policyName, workload.Mix{Name: b.Name}, true, opt), func() sim.Result {
		return sim.RunThreaded(cfg, ctrl, b, opt.Accesses, opt.Seed)
	})
}

// ResetMemo clears the run cache (tests and benchmarks use it to bound
// memory and force recomputation). See memo.Cache.Reset for the contract
// under concurrency; the Stats counters survive a reset.
func ResetMemo() { memo.Reset() }

// MemoStats counts run-cache activity since process start: Computed is
// the number of simulations actually executed, Recalled the number of
// requests served from the cache (including requests that waited on an
// in-flight computation). ResetMemo does not reset the counters, so
// deltas around a code region meter its simulation cost (this is how
// cmd/lapexp -timings derives per-artifact runs/sec).
type MemoStats struct {
	Computed uint64 `json:"computed"`
	Recalled uint64 `json:"recalled"`
}

// Stats snapshots the memo counters.
func Stats() MemoStats {
	s := memo.Stats()
	return MemoStats{Computed: s.Computed, Recalled: s.Recalled}
}
