//go:build race

package experiments

// raceEnabled narrows TestDeterminismAcrossJobs to a representative
// artifact subset: the race detector's ~10x slowdown makes the full
// registry sweep impractical, and the subset still exercises every
// scheduler path (plain, threaded, multi-config warm batches).
const raceEnabled = true
