package experiments

import (
	"strconv"
	"strings"
	"testing"

	"repro/internal/sim"
	"repro/internal/workload"
)

// tiny returns a scale small enough for unit tests: shapes are noisier
// than at Defaults() but the structural properties tested here hold.
func tiny() Options {
	return Options{Accesses: 40_000, Seed: 2016, RandomMixes: 3, DuelPeriod: 60_000}
}

// skipHeavyUnderRace skips the heavyweight shape tests when the race
// detector is on. Their scheduler/memo paths are already exercised at a
// smaller scale by sched_test.go, so under the detector's ~10x slowdown
// they dominate the suite without adding race coverage.
func skipHeavyUnderRace(t *testing.T) {
	if raceEnabled {
		t.Skip("heavy shape test: race coverage provided by sched_test.go")
	}
}

func TestRegistryCoversOrder(t *testing.T) {
	reg := Registry(tiny())
	for _, id := range Order() {
		if _, ok := reg[id]; !ok {
			t.Errorf("Order lists %q but Registry lacks it", id)
		}
	}
	if len(reg) != len(Order()) {
		t.Errorf("Registry has %d entries, Order %d", len(reg), len(Order()))
	}
}

func TestTablesRender(t *testing.T) {
	opt := tiny()
	for _, id := range []string{"table1", "table2", "table4"} {
		tab := Registry(opt)[id]()
		if len(tab.Rows) == 0 || len(tab.Header) == 0 {
			t.Errorf("%s: empty table", id)
		}
		var sb strings.Builder
		tab.Fprint(&sb)
		if !strings.Contains(sb.String(), tab.ID) {
			t.Errorf("%s: rendering lacks ID", id)
		}
	}
}

func TestTable1MatchesPaper(t *testing.T) {
	tab := Table1(tiny())
	var sb strings.Builder
	tab.Fprint(&sb)
	for _, v := range []string{"0.436", "0.133", "7.108", "50.736", "10.91"} {
		if !strings.Contains(sb.String(), v) {
			t.Errorf("Table I missing paper constant %s", v)
		}
	}
}

func TestFig2ShapeHolds(t *testing.T) {
	skipHeavyUnderRace(t)
	opt := tiny()
	opt.Accesses = 120_000
	rows := Fig2Data(opt)
	if len(rows) != 13 {
		t.Fatalf("Fig2 rows = %d", len(rows))
	}
	var exWins, noniWins int
	for _, r := range rows {
		// SRAM: exclusion never loses materially.
		if r.SRAMExOverNoni > 1.05 {
			t.Errorf("%s: SRAM ex/noni = %.2f > 1.05", r.Bench, r.SRAMExOverNoni)
		}
		// Exclusion must not increase misses.
		if r.Mrel > 1.02 {
			t.Errorf("%s: Mrel = %.2f > 1", r.Bench, r.Mrel)
		}
		if r.STTExOverNoni < 0.98 {
			exWins++
		}
		if r.STTExOverNoni > 1.02 {
			noniWins++
		}
	}
	// The paper's central motivation: neither traditional policy is
	// dominant for STT-RAM.
	if exWins == 0 || noniWins == 0 {
		t.Fatalf("no policy diversity: exWins=%d noniWins=%d", exWins, noniWins)
	}
}

func TestFig4LoopWorkloadsStandOut(t *testing.T) {
	skipHeavyUnderRace(t)
	// Loop-block statistics need enough passes over the ~1.5MB loop
	// regions to accumulate clean-trip runs, hence the longer trace.
	opt := tiny()
	opt.Accesses = 300_000
	byName := map[string]Fig4Row{}
	for _, r := range Fig4Data(opt) {
		byName[r.Bench] = r
	}
	for _, loopy := range []string{"omnetpp", "xalancbmk"} {
		if byName[loopy].Total() < 0.35 {
			t.Errorf("%s loop-block fraction = %.2f, want high", loopy, byName[loopy].Total())
		}
		// Majority of their loop-blocks repeat many clean trips.
		if byName[loopy].CTCHigh < byName[loopy].CTC1 {
			t.Errorf("%s: CTC>=5 share below CTC=1 share", loopy)
		}
	}
	for _, streamy := range []string{"libquantum", "lbm"} {
		if byName[streamy].Total() > 0.05 {
			t.Errorf("%s loop-block fraction = %.2f, want ~0", streamy, byName[streamy].Total())
		}
	}
}

func TestFig6RedundantFills(t *testing.T) {
	opt := tiny()
	byName := map[string]float64{}
	for _, r := range Fig6Data(opt) {
		byName[r.Bench] = r.RedundantFillFrac
	}
	if byName["libquantum"] < 0.8 {
		t.Errorf("libquantum redundant fills = %.2f, want > 0.8", byName["libquantum"])
	}
	if byName["libquantum"] <= byName["leslie3d"] {
		t.Error("stream-update workload should out-rank read-stream workload")
	}
}

func TestFig13BorderlineNote(t *testing.T) {
	tab := Fig13(tiny())
	found := false
	for _, n := range tab.Notes {
		if strings.Contains(n, "classifies") {
			found = true
		}
	}
	if !found {
		t.Fatal("Fig13 missing borderline classification note")
	}
}

// TestFig14LAPWins asserts the paper's headline on every Table III mix:
// LAP's EPI is at or below both traditional policies.
func TestFig14LAPWins(t *testing.T) {
	skipHeavyUnderRace(t)
	opt := tiny()
	opt.Accesses = 100_000
	cfg := sim.DefaultConfig()
	for _, mix := range workload.TableIII() {
		b := baselines(cfg, mix, opt)
		lapRes := run(cfg, "LAP", LAP(opt), mix, opt)
		if lapRes.EPI.Total() > b.Noni.EPI.Total()*1.01 {
			t.Errorf("%s: LAP EPI above non-inclusive (%.4f vs %.4f)",
				mix.Name, lapRes.EPI.Total(), b.Noni.EPI.Total())
		}
		if lapRes.EPI.Total() > b.Ex.EPI.Total()*1.01 {
			t.Errorf("%s: LAP EPI above exclusive (%.4f vs %.4f)",
				mix.Name, lapRes.EPI.Total(), b.Ex.EPI.Total())
		}
	}
}

func TestFig15LAPNeverFills(t *testing.T) {
	tab := Fig15(tiny())
	for _, row := range tab.Rows {
		if row[1] == "LAP" && row[2] != "0.00" {
			t.Errorf("%s: LAP data-fill share %s, want 0.00", row[0], row[2])
		}
		if row[1] == "noni" && row[4] != "0.00" {
			t.Errorf("%s: noni clean share %s, want 0.00", row[0], row[4])
		}
	}
}

func TestFig23MonotoneInRatio(t *testing.T) {
	skipHeavyUnderRace(t)
	opt := tiny()
	tab := Fig23(opt)
	// The sweep rows come first; savings must increase with the ratio.
	var prev float64 = -1
	count := 0
	for _, row := range tab.Rows {
		if row[1] != "scalability sweep" {
			continue
		}
		v, err := strconv.ParseFloat(strings.TrimSuffix(row[2], "%"), 64)
		if err != nil {
			t.Fatalf("bad savings cell %q", row[2])
		}
		if v < prev-1.0 { // allow 1pp noise at tiny scale
			t.Errorf("savings dropped from %.1f%% to %.1f%% as ratio grew", prev, v)
		}
		prev = v
		count++
	}
	if count < 5 {
		t.Fatalf("sweep rows = %d", count)
	}
}

func TestFig24LhybridBeatsLAP(t *testing.T) {
	skipHeavyUnderRace(t)
	opt := tiny()
	opt.Accesses = 100_000
	cfg := sim.DefaultConfig().WithHybridL3()
	var lapSum, lhySum float64
	for _, mix := range workload.TableIII() {
		base := run(cfg, "noni", Noni(), mix, opt)
		lapSum += ratio(run(cfg, "LAP", LAP(opt), mix, opt).EPI.Total(), base.EPI.Total())
		lhySum += ratio(run(cfg, "Lhybrid", Lhybrid(opt), mix, opt).EPI.Total(), base.EPI.Total())
	}
	if lhySum >= lapSum {
		t.Fatalf("Lhybrid avg %.3f not better than LAP avg %.3f", lhySum/10, lapSum/10)
	}
}

func TestMemoReuses(t *testing.T) {
	ResetMemo()
	opt := tiny()
	cfg := sim.DefaultConfig()
	mix := workload.TableIII()[0]
	a := run(cfg, "noni", Noni(), mix, opt)
	before := memo.Len()
	recalled := Stats().Recalled
	b := run(cfg, "noni", Noni(), mix, opt)
	if memo.Len() != before {
		t.Fatal("second identical run was not memoised")
	}
	if Stats().Recalled != recalled+1 {
		t.Fatal("second identical run was not counted as recalled")
	}
	if a.Met != b.Met {
		t.Fatal("memoised result differs")
	}
	// A different config must not hit the same entry.
	run(cfg.WithSRAML3(), "noni", Noni(), mix, opt)
	if memo.Len() == before {
		t.Fatal("different config shared a memo entry")
	}
	ResetMemo()
	if memo.Len() != 0 {
		t.Fatal("ResetMemo did not clear")
	}
}

func TestTableFormatting(t *testing.T) {
	tab := &Table{ID: "X", Title: "t", Header: []string{"a", "bb"}}
	tab.AddRow("1", "2")
	tab.Notes = []string{"n"}
	var sb strings.Builder
	tab.Fprint(&sb)
	out := sb.String()
	for _, want := range []string{"X — t", "a", "bb", "note: n"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered table missing %q:\n%s", want, out)
		}
	}
}

func TestHelperMath(t *testing.T) {
	if mean(nil) != 0 || mean([]float64{2, 4}) != 3 {
		t.Error("mean wrong")
	}
	if maxOf([]float64{1, 5, 2}) != 5 || minOf([]float64{3, 1, 2}) != 1 {
		t.Error("max/min wrong")
	}
	if ratio(1, 0) != 0 || ratio(6, 3) != 2 {
		t.Error("ratio wrong")
	}
	if joinShort([]string{"omnetpp", "mcf"}) != "omne,mcf" {
		t.Errorf("joinShort = %q", joinShort([]string{"omnetpp", "mcf"}))
	}
	if pct(0.125) != "12.5%" || f2(1.234) != "1.23" || f3(1.2345) != "1.234" || itoa(7) != "7" {
		t.Error("formatters wrong")
	}
}

func TestTableIIIMixesForWidening(t *testing.T) {
	m4 := tableIIIMixesFor(4)
	if len(m4[0].Members) != 4 {
		t.Fatal("4-core mixes wrong width")
	}
	m8 := tableIIIMixesFor(8)
	for _, m := range m8 {
		if len(m.Members) != 8 {
			t.Fatalf("%s: width %d", m.Name, len(m.Members))
		}
		for j := 0; j < 4; j++ {
			if m.Members[j] != m.Members[j+4] {
				t.Fatalf("%s: widening did not repeat members", m.Name)
			}
		}
	}
}
