package experiments

import (
	"repro/internal/sim"
	"repro/internal/workload"
)

// Fig20 evaluates the multi-threaded PARSEC surrogates with the snooping
// coherence bus: (a) total LLC energy, (b) performance (1/runtime), and
// (c) coherence traffic, all normalised to the non-inclusive policy.
func Fig20(opt Options) *Table {
	cfg := sim.DefaultConfig()
	pols := evaluatedPolicies(cfg, opt)
	t := &Table{
		ID:     "Fig. 20",
		Title:  "PARSEC (4 threads, MOESI snooping): energy, performance, snoop traffic vs non-inclusive",
		Header: []string{"benchmark", "metric", "Exclusive", "FLEXclusion", "Dswitch", "LAP"},
		Notes: []string{
			"paper shape: LAP saves ~11%/~7% energy vs noni/ex; streamcluster saves most (53%/18%);",
			"exclusion cuts snoop traffic ~38% vs noni; LAP ~33% (5% more than exclusion)",
		},
	}
	var sumE, sumP, sumS [4]float64
	benches := workload.PARSEC()
	warm(opt, threadedRunBatch(cfg, opt, benches, append([]namedPolicy{noniPol()}, pols...)...))
	for _, b := range benches {
		base := runThreaded(cfg, "noni", Noni(), b, opt)
		eRow := []string{b.Name, "energy"}
		pRow := []string{"", "performance"}
		sRow := []string{"", "snoop traffic"}
		for i, p := range pols {
			r := runThreaded(cfg, p.Name, p.New, b, opt)
			re := ratio(r.TotalNJ, base.TotalNJ)
			// Multi-threaded performance is inverse runtime (the paper
			// reports latency for PARSEC).
			rp := ratio(float64(base.Cycles), float64(r.Cycles))
			rs := ratio(float64(r.Met.SnoopTraffic), float64(base.Met.SnoopTraffic))
			sumE[i] += re
			sumP[i] += rp
			sumS[i] += rs
			eRow = append(eRow, f2(re))
			pRow = append(pRow, f2(rp))
			sRow = append(sRow, f2(rs))
		}
		t.Rows = append(t.Rows, eRow, pRow, sRow)
	}
	n := float64(len(benches))
	avgE := []string{"Avg", "energy"}
	avgP := []string{"", "performance"}
	avgS := []string{"", "snoop traffic"}
	for i := range pols {
		avgE = append(avgE, f2(sumE[i]/n))
		avgP = append(avgP, f2(sumP[i]/n))
		avgS = append(avgS, f2(sumS[i]/n))
	}
	t.Rows = append(t.Rows, avgE, avgP, avgS)
	return t
}
