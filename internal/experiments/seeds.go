package experiments

import (
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workload"
)

// ExtSeeds quantifies run-to-run stability of the headline result: LAP's
// EPI relative to non-inclusion over the Table III mixes, repeated across
// several workload seeds, reported as mean ± 95% CI. The paper runs one
// long simulation per configuration; our shorter synthetic runs make the
// seed sweep the honest substitute for that statistical weight.
func ExtSeeds(opt Options) *Table {
	const nSeeds = 5
	cfg := sim.DefaultConfig()
	t := &Table{
		ID:     "Ext. Seeds",
		Title:  "Stability of LAP's EPI vs non-inclusive across workload seeds (mean ± 95% CI)",
		Header: []string{"mix", "LAP/noni EPI", "Exclusive/noni EPI"},
		Notes: []string{
			"seed sweep over the Table III mixes; CIs use Student-t with n=5",
		},
	}
	mixes := workload.TableIII()
	var batch []func()
	for s := 0; s < nSeeds; s++ {
		o := opt
		o.Seed = opt.Seed + uint64(s)*7919
		batch = append(batch, mixRunBatch(cfg, o, mixes,
			noniPol(), namedPolicy{"LAP", LAP(o)}, exPol())...)
	}
	warm(opt, batch)
	var allLap, allEx stats.Stream
	for _, mix := range mixes {
		var lapS, exS stats.Stream
		for s := 0; s < nSeeds; s++ {
			o := opt
			o.Seed = opt.Seed + uint64(s)*7919
			base := run(cfg, "noni", Noni(), mix, o)
			lapRes := run(cfg, "LAP", LAP(o), mix, o)
			exRes := run(cfg, "ex", Ex(), mix, o)
			rl := ratio(lapRes.EPI.Total(), base.EPI.Total())
			re := ratio(exRes.EPI.Total(), base.EPI.Total())
			lapS.Add(rl)
			exS.Add(re)
			allLap.Add(rl)
			allEx.Add(re)
		}
		t.AddRow(mix.Name, lapS.Summary().String(), exS.Summary().String())
	}
	t.AddRow("All", allLap.Summary().String(), allEx.Summary().String())
	return t
}
