package experiments

import (
	"fmt"

	"repro/internal/energy"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Sensitivity studies (Section VI-D): Figure 21 (L2:L3 capacity ratios),
// Figure 22 (core count), and Figure 23 (write/read energy ratio).

// avgEPIOverMixes runs every Table III mix under each policy and returns
// the WL-average, WH-average and overall average EPI normalised to
// non-inclusive. WL/WH classification uses the measured write ratio.
func avgEPIOverMixes(cfg sim.Config, opt Options, pols []namedPolicy) (wl, wh, all map[string]float64) {
	wl = map[string]float64{}
	wh = map[string]float64{}
	all = map[string]float64{}
	// Empty groups stay empty maps so callers can skip them.
	var nWL, nWH int
	mixes := tableIIIMixesFor(cfg.Cores)
	warmMixRuns(cfg, opt, mixes, append([]namedPolicy{noniPol(), exPol()}, pols...)...)
	for _, mix := range mixes {
		b := baselines(cfg, mix, opt)
		isWL := b.Wrel() < 1
		if isWL {
			nWL++
		} else {
			nWH++
		}
		for _, p := range pols {
			r := run(cfg, p.Name, p.New, mix, opt)
			rel := ratio(r.EPI.Total(), b.Noni.EPI.Total())
			all[p.Name] += rel
			if isWL {
				wl[p.Name] += rel
			} else {
				wh[p.Name] += rel
			}
		}
	}
	for name := range all {
		all[name] /= float64(len(mixes))
		if nWL > 0 {
			wl[name] /= float64(nWL)
		}
		if nWH > 0 {
			wh[name] /= float64(nWH)
		}
	}
	return wl, wh, all
}

// tableIIIMixesFor widens the Table III mixes to the given core count by
// repeating members, so the 8-core study (Fig. 22) keeps the same
// workload character.
func tableIIIMixesFor(cores int) []workload.Mix {
	base := workload.TableIII()
	if cores == len(base[0].Members) {
		return base
	}
	out := make([]workload.Mix, len(base))
	for i, m := range base {
		members := make([]string, cores)
		for j := range members {
			members[j] = m.Members[j%len(m.Members)]
		}
		out[i] = workload.Mix{Name: m.Name, Members: members}
	}
	return out
}

// Fig21 sweeps the L2:L3 capacity ratio: (a) private L2 256KB-1MB with an
// 8MB L3; (b) larger L3s (16MB, 24MB) exploiting STT-RAM density.
func Fig21(opt Options) *Table {
	t := &Table{
		ID:     "Fig. 21",
		Title:  "LLC EPI normalised to non-inclusive across L2:L3 capacity ratios (avg over Table III mixes)",
		Header: []string{"config", "group", "Exclusive", "FLEXclusion", "Dswitch", "LAP"},
		Notes: []string{
			"paper shape: exclusion and LAP gain as L2:L3 grows; at 24MB L3, LAP still saves ~10%",
		},
	}
	addConfig := func(label string, cfg sim.Config) {
		pols := evaluatedPolicies(cfg, opt)
		wl, wh, all := avgEPIOverMixes(cfg, opt, pols)
		for _, group := range []struct {
			name string
			m    map[string]float64
		}{{"WL", wl}, {"WH", wh}, {"All", all}} {
			if len(group.m) == 0 {
				continue
			}
			row := []string{label, group.name}
			for _, p := range pols {
				row = append(row, f2(group.m[p.Name]))
			}
			t.Rows = append(t.Rows, row)
		}
	}
	for _, l2kb := range []int{256, 512, 1024} {
		cfg := sim.DefaultConfig()
		cfg.L2SizeBytes = l2kb << 10
		addConfig(fmt.Sprintf("L2=%dKB,L3=8MB (1:%d)", l2kb, cfg.L3SizeBytes/(cfg.Cores*cfg.L2SizeBytes)), cfg)
	}
	for _, l3mb := range []int{16, 24} {
		cfg := sim.DefaultConfig()
		cfg.L3SizeBytes = l3mb << 20
		if l3mb == 24 {
			// Keep a power-of-two set count by widening associativity.
			cfg.L3Ways = 24
		}
		addConfig(fmt.Sprintf("L2=512KB,L3=%dMB", l3mb), cfg)
	}
	return t
}

// Fig22 compares 4-core and 8-core systems with fixed cache sizes.
func Fig22(opt Options) *Table {
	t := &Table{
		ID:     "Fig. 22",
		Title:  "LLC EPI normalised to non-inclusive for 4- and 8-core systems (avg over Table III mixes)",
		Header: []string{"cores", "group", "Exclusive", "FLEXclusion", "Dswitch", "LAP"},
		Notes: []string{
			"paper shape: more cores -> more capacity contention -> exclusion gains; LAP saves ~25%/~12% at 8 cores",
		},
	}
	for _, cores := range []int{4, 8} {
		cfg := sim.DefaultConfig()
		cfg.Cores = cores
		pols := evaluatedPolicies(cfg, opt)
		wl, wh, all := avgEPIOverMixes(cfg, opt, pols)
		for _, group := range []struct {
			name string
			m    map[string]float64
		}{{"WL", wl}, {"WH", wh}, {"All", all}} {
			if len(group.m) == 0 {
				continue
			}
			row := []string{itoa(cores), group.name}
			for _, p := range pols {
				row = append(row, f2(group.m[p.Name]))
			}
			t.Rows = append(t.Rows, row)
		}
	}
	return t
}

// Fig23 sweeps the STT-RAM write/read energy ratio, holding read energy
// and leakage fixed, and reports LAP's average EPI savings over
// non-inclusion; published design points are evaluated at their ratios.
func Fig23(opt Options) *Table {
	t := &Table{
		ID:     "Fig. 23",
		Title:  "LAP EPI savings over non-inclusive vs write/read energy ratio",
		Header: []string{"w/r ratio", "design point", "LAP savings"},
		Notes: []string{
			"paper shape: savings grow with the ratio; >=17% already at 2x; the ratio is the key predictor",
		},
	}
	type point struct {
		ratioWR float64
		label   string
	}
	points := []point{}
	for _, r := range []float64{2, 3.3, 5, 8, 12, 16, 20, 25} {
		points = append(points, point{r, "scalability sweep"})
	}
	for _, pc := range energy.PublishedConfigs() {
		points = append(points, point{pc.WriteReadRatio, pc.Ref + " " + pc.Description})
	}
	cfgFor := func(ratioWR float64) sim.Config {
		return sim.DefaultConfig().WithSTTL3(energy.STTRAM().WithWriteReadRatio(ratioWR))
	}
	mixes := workload.TableIII()
	var batch []func()
	for _, p := range points {
		batch = append(batch, mixRunBatch(cfgFor(p.ratioWR), opt, mixes, noniPol(), namedPolicy{"LAP", LAP(opt)})...)
	}
	warm(opt, batch)
	for _, p := range points {
		cfg := cfgFor(p.ratioWR)
		var save float64
		for _, mix := range mixes {
			base := run(cfg, "noni", Noni(), mix, opt)
			lap := run(cfg, "LAP", LAP(opt), mix, opt)
			save += 1 - ratio(lap.EPI.Total(), base.EPI.Total())
		}
		t.AddRow(fmt.Sprintf("%.1f", p.ratioWR), p.label, pct(save/float64(len(mixes))))
	}
	return t
}
