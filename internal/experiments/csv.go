package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
)

// CSV export so artifact data can be fed to external plotting tools.

// WriteCSV renders the table as CSV: a comment line with the ID/title,
// then the header and rows.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"# " + t.ID, t.Title}); err != nil {
		return fmt.Errorf("experiments: csv header: %w", err)
	}
	if err := cw.Write(t.Header); err != nil {
		return fmt.Errorf("experiments: csv columns: %w", err)
	}
	for _, row := range t.Rows {
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("experiments: csv row: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// SaveCSV writes the table to dir/<id>.csv, deriving the file name from
// the artifact ID ("Fig. 14" -> fig14.csv).
func (t *Table) SaveCSV(dir string) (string, error) {
	name := strings.ToLower(t.ID)
	name = strings.NewReplacer(" ", "", ".", "", "ext", "ext-").Replace(name)
	path := filepath.Join(dir, name+".csv")
	f, err := os.Create(path)
	if err != nil {
		return "", fmt.Errorf("experiments: creating %s: %w", path, err)
	}
	defer f.Close()
	if err := t.WriteCSV(f); err != nil {
		return "", err
	}
	return path, f.Close()
}
