package health

import (
	"sync"
	"time"

	"repro/internal/obs"
)

// Status is one probe's verdict.
type Status struct {
	Healthy bool   `json:"healthy"`
	Detail  string `json:"detail,omitempty"`
}

// OK is the healthy Status.
func OK() Status { return Status{Healthy: true} }

// Degraded builds an unhealthy Status with a human-readable reason.
func Degraded(detail string) Status { return Status{Healthy: false, Detail: detail} }

// Watchdog periodically probes named subsystems (admission queue,
// deadline budget, checkpoint store, breaker, ...) and surfaces each as
// a 0/1 gauge plus an edge-triggered transition callback — the callback
// is how degradations become journal events without the probes knowing
// about the journal.
//
// Add all checks, then Register, then Start. Probes run from a single
// goroutine; a probe may keep closure state (e.g. last-seen error
// counters) without locking.
type Watchdog struct {
	interval time.Duration
	onChange func(subsystem string, healthy bool, detail string)

	mu     sync.Mutex
	names  []string
	probes map[string]func() Status
	state  map[string]Status
	gauges map[string]*obs.Gauge

	stop chan struct{}
	done chan struct{}
}

// NewWatchdog builds a watchdog that probes every interval (<= 0
// selects 5s).
func NewWatchdog(interval time.Duration) *Watchdog {
	if interval <= 0 {
		interval = 5 * time.Second
	}
	return &Watchdog{
		interval: interval,
		probes:   map[string]func() Status{},
		state:    map[string]Status{},
		gauges:   map[string]*obs.Gauge{},
	}
}

// Add registers a named probe. All probes start out healthy until the
// first evaluation. Must be called before Start.
func (w *Watchdog) Add(subsystem string, probe func() Status) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if _, dup := w.probes[subsystem]; dup {
		panic("health: duplicate watchdog subsystem " + subsystem)
	}
	w.names = append(w.names, subsystem)
	w.probes[subsystem] = probe
	w.state[subsystem] = OK()
}

// OnTransition installs the edge-triggered callback, invoked (from the
// watchdog goroutine, or RunOnce's caller) whenever a subsystem flips
// between healthy and degraded. Must be set before Start.
func (w *Watchdog) OnTransition(fn func(subsystem string, healthy bool, detail string)) {
	w.onChange = fn
}

// Register creates one `<ns>_watchdog_healthy{subsystem=...}` gauge per
// check added so far, initialized to 1 (healthy).
func (w *Watchdog) Register(reg *obs.Registry, ns string) {
	w.mu.Lock()
	defer w.mu.Unlock()
	for _, name := range w.names {
		g := reg.Gauge(ns+"_watchdog_healthy",
			"Watchdog verdict per subsystem (1 healthy, 0 degraded).",
			obs.L("subsystem", name))
		g.Set(1)
		w.gauges[name] = g
	}
}

// RunOnce evaluates every probe immediately, updating gauges and firing
// transition callbacks. Exposed for tests and for callers wanting fresh
// state (e.g. a diagnostics bundle).
func (w *Watchdog) RunOnce() {
	w.mu.Lock()
	names := append([]string(nil), w.names...)
	w.mu.Unlock()
	for _, name := range names {
		w.mu.Lock()
		probe := w.probes[name]
		prev := w.state[name]
		w.mu.Unlock()
		st := probe()
		w.mu.Lock()
		w.state[name] = st
		g := w.gauges[name]
		w.mu.Unlock()
		if g != nil {
			if st.Healthy {
				g.Set(1)
			} else {
				g.Set(0)
			}
		}
		if st.Healthy != prev.Healthy && w.onChange != nil {
			w.onChange(name, st.Healthy, st.Detail)
		}
	}
}

// Start launches the probe loop. Stop() terminates it; Start after Stop
// is not supported.
func (w *Watchdog) Start() {
	w.stop = make(chan struct{})
	w.done = make(chan struct{})
	go func() {
		defer close(w.done)
		t := time.NewTicker(w.interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				w.RunOnce()
			case <-w.stop:
				return
			}
		}
	}()
}

// Stop terminates the probe loop and waits for it to exit. Safe to call
// when never started, and idempotent.
func (w *Watchdog) Stop() {
	if w.stop == nil {
		return
	}
	select {
	case <-w.stop:
	default:
		close(w.stop)
	}
	<-w.done
}

// Snapshot returns the last evaluated status per subsystem.
func (w *Watchdog) Snapshot() map[string]Status {
	w.mu.Lock()
	defer w.mu.Unlock()
	out := make(map[string]Status, len(w.state))
	for k, v := range w.state {
		out[k] = v
	}
	return out
}
