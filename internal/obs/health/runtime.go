// Package health adds liveness-adjacent observability on top of the
// internal/obs metrics registry: Go runtime collectors (goroutines, GC
// pauses, heap gauges, scheduler facts, file descriptors), a
// per-subsystem watchdog that turns stalled queues and erroring stores
// into gauge flips and journal events, and a rolling-window SLO tracker
// with multi-window burn-rate gauges.
package health

import (
	"os"
	"runtime"
	"sync"
	"time"

	"repro/internal/obs"
)

// memStatsTTL bounds how often the runtime collector calls
// runtime.ReadMemStats, which stops the world briefly; one scrape
// touches many gauges and must not pay that repeatedly.
const memStatsTTL = 500 * time.Millisecond

// Runtime samples Go runtime statistics into registry gauges. All
// registered readers share one cached runtime.MemStats snapshot
// refreshed at most every memStatsTTL.
type Runtime struct {
	mu        sync.Mutex
	fetched   time.Time
	ms        runtime.MemStats
	lastNumGC uint32
	pause     *obs.Histogram
	now       func() time.Time // injectable for tests
}

// RegisterRuntime registers the Go runtime collectors on reg and
// returns the sampler (exposed for tests; production callers can drop
// it).
//
// Series:
//
//	go_goroutines                 gauge
//	go_gomaxprocs                 gauge
//	go_heap_alloc_bytes           gauge
//	go_heap_sys_bytes             gauge
//	go_heap_objects               gauge
//	go_stack_inuse_bytes          gauge
//	go_next_gc_bytes              gauge
//	go_alloc_bytes_total          counter (cumulative TotalAlloc)
//	go_gc_cycles_total            counter
//	go_gc_pause_seconds           histogram (per completed GC cycle)
//	process_open_fds              gauge (-1 where /proc is unavailable)
func RegisterRuntime(reg *obs.Registry) *Runtime {
	rt := &Runtime{now: time.Now}
	rt.pause = reg.Histogram("go_gc_pause_seconds",
		"Stop-the-world GC pause durations.",
		obs.ExpBuckets(10e-6, 2, 12)) // 10µs .. ~20ms
	reg.GaugeFunc("go_goroutines", "Number of live goroutines.",
		func() float64 { return float64(runtime.NumGoroutine()) })
	reg.GaugeFunc("go_gomaxprocs", "GOMAXPROCS worker parallelism.",
		func() float64 { return float64(runtime.GOMAXPROCS(0)) })
	reg.GaugeFunc("go_heap_alloc_bytes", "Bytes of allocated heap objects.",
		func() float64 { return float64(rt.memStats().HeapAlloc) })
	reg.GaugeFunc("go_heap_sys_bytes", "Heap memory obtained from the OS.",
		func() float64 { return float64(rt.memStats().HeapSys) })
	reg.GaugeFunc("go_heap_objects", "Number of allocated heap objects.",
		func() float64 { return float64(rt.memStats().HeapObjects) })
	reg.GaugeFunc("go_stack_inuse_bytes", "Bytes in stack spans in use.",
		func() float64 { return float64(rt.memStats().StackInuse) })
	reg.GaugeFunc("go_next_gc_bytes", "Heap size target of the next GC cycle.",
		func() float64 { return float64(rt.memStats().NextGC) })
	reg.CounterFunc("go_alloc_bytes_total", "Cumulative bytes allocated on the heap.",
		func() uint64 { return rt.memStats().TotalAlloc })
	reg.CounterFunc("go_gc_cycles_total", "Completed GC cycles.",
		func() uint64 { return uint64(rt.memStats().NumGC) })
	reg.GaugeFunc("process_open_fds", "Open file descriptors (-1 if unreadable).",
		func() float64 { return float64(OpenFDs()) })
	return rt
}

// memStats returns the cached MemStats snapshot, refreshing it (and
// feeding newly completed GC pauses into the pause histogram) when the
// snapshot is older than memStatsTTL.
func (rt *Runtime) memStats() runtime.MemStats {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if now := rt.now(); now.Sub(rt.fetched) >= memStatsTTL {
		runtime.ReadMemStats(&rt.ms)
		rt.fetched = now
		rt.drainPausesLocked()
	}
	return rt.ms
}

// Refresh forces a MemStats resample regardless of TTL (tests).
func (rt *Runtime) Refresh() {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	runtime.ReadMemStats(&rt.ms)
	rt.fetched = rt.now()
	rt.drainPausesLocked()
}

// drainPausesLocked feeds GC pauses completed since the previous sample
// into the pause histogram. MemStats.PauseNs is a circular buffer of
// the most recent 256 pauses indexed by NumGC; if more than 256 cycles
// completed between samples the overwritten ones are lost (counted by
// nobody — scrape more often than ~256 GCs if that matters).
func (rt *Runtime) drainPausesLocked() {
	n := rt.ms.NumGC
	if n == rt.lastNumGC {
		return
	}
	from := rt.lastNumGC
	if n-from > uint32(len(rt.ms.PauseNs)) {
		from = n - uint32(len(rt.ms.PauseNs))
	}
	for i := from; i < n; i++ {
		rt.pause.Observe(float64(rt.ms.PauseNs[i%uint32(len(rt.ms.PauseNs))]) / 1e9)
	}
	rt.lastNumGC = n
}

// OpenFDs counts this process's open file descriptors via
// /proc/self/fd. It returns -1 on platforms or sandboxes where /proc
// is unavailable.
func OpenFDs() int {
	ents, err := os.ReadDir("/proc/self/fd")
	if err != nil {
		return -1
	}
	// The ReadDir handle itself is one of the entries; don't count it.
	return len(ents) - 1
}
