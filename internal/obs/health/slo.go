package health

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/obs"
)

// SLOConfig declares the service-level objectives the tracker accounts
// against. The zero value selects the defaults below.
type SLOConfig struct {
	// Objective is the availability objective: the target fraction of
	// run/sweep requests that complete without a server-side failure.
	// Default 0.999.
	Objective float64
	// LatencyObjective is the target fraction of requests finishing
	// under LatencyTarget. Default 0.95.
	LatencyObjective float64
	// LatencyTarget is the latency threshold a request must beat to
	// count as fast. Default 30s (full-scale simulation cells run for
	// seconds; sweeps for tens of seconds).
	LatencyTarget time.Duration
	// Windows are the rolling windows burn rates are computed over.
	// Default 5m, 1h, 6h — the classic multi-window page/ticket pair
	// plus a fast window for smoke tests.
	Windows []time.Duration
}

func (c SLOConfig) withDefaults() SLOConfig {
	if c.Objective <= 0 || c.Objective >= 1 {
		c.Objective = 0.999
	}
	if c.LatencyObjective <= 0 || c.LatencyObjective >= 1 {
		c.LatencyObjective = 0.95
	}
	if c.LatencyTarget <= 0 {
		c.LatencyTarget = 30 * time.Second
	}
	if len(c.Windows) == 0 {
		c.Windows = []time.Duration{5 * time.Minute, time.Hour, 6 * time.Hour}
	}
	return c
}

// sloBucket accumulates one second of request outcomes.
type sloBucket struct {
	sec    int64 // unix second this bucket currently represents
	total  uint64
	errors uint64
	slow   uint64
}

// SLOTracker accounts request outcomes into per-second buckets and
// derives multi-window error budgets. Burn rate is the SRE convention:
//
//	burn = observed_bad_fraction / allowed_bad_fraction
//
// where allowed_bad_fraction is 1-objective; burn 1.0 consumes the
// error budget exactly at the sustainable rate, burn 14.4 on a 0.999
// objective exhausts a 30-day budget in ~2 days (page territory).
type SLOTracker struct {
	cfg SLOConfig
	now func() time.Time // injectable for tests

	mu      sync.Mutex
	buckets []sloBucket // ring over max(Windows) seconds, indexed by sec % len
	// lifetime totals (never windowed out)
	total, errors, slow uint64
}

// NewSLO builds a tracker; zero-valued cfg fields take defaults.
func NewSLO(cfg SLOConfig) *SLOTracker {
	cfg = cfg.withDefaults()
	maxW := cfg.Windows[0]
	for _, w := range cfg.Windows {
		if w > maxW {
			maxW = w
		}
	}
	return &SLOTracker{
		cfg:     cfg,
		now:     time.Now,
		buckets: make([]sloBucket, int(maxW/time.Second)+1),
	}
}

// Config returns the resolved objectives.
func (t *SLOTracker) Config() SLOConfig { return t.cfg }

// Observe records one request outcome. ok=false means a server-side
// failure (5xx — client errors and cancellations don't burn budget).
func (t *SLOTracker) Observe(ok bool, latency time.Duration) {
	if t == nil {
		return
	}
	sec := t.now().Unix()
	t.mu.Lock()
	b := &t.buckets[sec%int64(len(t.buckets))]
	if b.sec != sec {
		*b = sloBucket{sec: sec}
	}
	b.total++
	t.total++
	if !ok {
		b.errors++
		t.errors++
	}
	if latency > t.cfg.LatencyTarget {
		b.slow++
		t.slow++
	}
	t.mu.Unlock()
}

// WindowStats is one rolling window's accounting.
type WindowStats struct {
	// Window is the window length ("5m0s" when serialized).
	Window string `json:"window"`
	// Total, Errors and Slow count requests observed inside the window.
	Total  uint64 `json:"total"`
	Errors uint64 `json:"errors"`
	Slow   uint64 `json:"slow"`
	// SuccessRate is 1 - Errors/Total (1 when the window is empty).
	SuccessRate float64 `json:"success_rate"`
	// AvailabilityBurn and LatencyBurn are burn rates against the
	// respective objectives; 0 when the window is empty.
	AvailabilityBurn float64 `json:"availability_burn"`
	LatencyBurn      float64 `json:"latency_burn"`
}

// Windows computes the per-window stats at the current instant.
func (t *SLOTracker) Windows() []WindowStats {
	if t == nil {
		return nil
	}
	nowSec := t.now().Unix()
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]WindowStats, 0, len(t.cfg.Windows))
	for _, w := range t.cfg.Windows {
		ws := WindowStats{Window: w.String(), SuccessRate: 1}
		span := int64(w / time.Second)
		for s := nowSec - span + 1; s <= nowSec; s++ {
			b := &t.buckets[s%int64(len(t.buckets))]
			if b.sec != s {
				continue // stale or empty second
			}
			ws.Total += b.total
			ws.Errors += b.errors
			ws.Slow += b.slow
		}
		if ws.Total > 0 {
			errFrac := float64(ws.Errors) / float64(ws.Total)
			slowFrac := float64(ws.Slow) / float64(ws.Total)
			ws.SuccessRate = 1 - errFrac
			ws.AvailabilityBurn = errFrac / (1 - t.cfg.Objective)
			ws.LatencyBurn = slowFrac / (1 - t.cfg.LatencyObjective)
		}
		out = append(out, ws)
	}
	return out
}

// Totals returns the lifetime request/error/slow counts.
func (t *SLOTracker) Totals() (total, errors, slow uint64) {
	if t == nil {
		return 0, 0, 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total, t.errors, t.slow
}

// Register exposes the tracker on reg:
//
//	<ns>_slo_burn_rate{slo="availability"|"latency",window="5m0s"...}  gauge
//	<ns>_slo_requests_total / _request_errors_total / _request_slow_total
func (t *SLOTracker) Register(reg *obs.Registry, ns string) {
	for i, w := range t.cfg.Windows {
		idx := i
		label := w.String()
		reg.GaugeFunc(ns+"_slo_burn_rate",
			fmt.Sprintf("Error-budget burn rate (1.0 = budget consumed exactly at the sustainable rate; objective %.4g).", t.cfg.Objective),
			func() float64 { return t.Windows()[idx].AvailabilityBurn },
			obs.L("slo", "availability"), obs.L("window", label))
		reg.GaugeFunc(ns+"_slo_burn_rate", "",
			func() float64 { return t.Windows()[idx].LatencyBurn },
			obs.L("slo", "latency"), obs.L("window", label))
	}
	reg.CounterFunc(ns+"_slo_requests_total", "Requests observed by the SLO tracker.",
		func() uint64 { total, _, _ := t.Totals(); return total })
	reg.CounterFunc(ns+"_slo_request_errors_total", "Requests that burned availability budget.",
		func() uint64 { _, errs, _ := t.Totals(); return errs })
	reg.CounterFunc(ns+"_slo_request_slow_total", "Requests exceeding the latency target.",
		func() uint64 { _, _, slow := t.Totals(); return slow })
}
