package health

import (
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
)

func TestRuntimeCollectors(t *testing.T) {
	reg := obs.NewRegistry()
	rt := RegisterRuntime(reg)
	runtime.GC() // guarantee at least one completed cycle / pause sample
	rt.Refresh()
	snap := reg.Snapshot()
	if snap["go_goroutines"] < 1 {
		t.Fatalf("go_goroutines = %v", snap["go_goroutines"])
	}
	if snap["go_heap_alloc_bytes"] <= 0 {
		t.Fatalf("go_heap_alloc_bytes = %v", snap["go_heap_alloc_bytes"])
	}
	if snap["go_gc_cycles_total"] < 1 {
		t.Fatalf("go_gc_cycles_total = %v", snap["go_gc_cycles_total"])
	}
	var b strings.Builder
	if _, err := reg.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"go_gc_pause_seconds_bucket", "go_goroutines", "process_open_fds"} {
		if !strings.Contains(b.String(), want) {
			t.Fatalf("exposition missing %s:\n%s", want, b.String())
		}
	}
}

func TestOpenFDs(t *testing.T) {
	n := OpenFDs()
	if runtime.GOOS == "linux" && n < 0 {
		t.Skip("/proc unavailable in sandbox")
	}
	if n == 0 {
		t.Fatalf("OpenFDs = 0; a test process holds at least stdio")
	}
}

func TestWatchdogTransitions(t *testing.T) {
	reg := obs.NewRegistry()
	w := NewWatchdog(time.Hour) // ticker never fires; drive via RunOnce
	var mu sync.Mutex
	var flips []string
	w.OnTransition(func(sub string, healthy bool, detail string) {
		mu.Lock()
		defer mu.Unlock()
		state := "up"
		if !healthy {
			state = "down:" + detail
		}
		flips = append(flips, sub+" "+state)
	})
	healthy := true
	w.Add("queue", func() Status {
		if healthy {
			return OK()
		}
		return Degraded("queue full")
	})
	w.Add("always", func() Status { return OK() })
	w.Register(reg, "test")
	w.RunOnce() // healthy -> healthy: no flip
	healthy = false
	w.RunOnce() // flip down
	w.RunOnce() // stays down: no second flip
	healthy = true
	w.RunOnce() // flip up

	mu.Lock()
	defer mu.Unlock()
	if len(flips) != 2 || flips[0] != "queue down:queue full" || flips[1] != "queue up" {
		t.Fatalf("flips = %v", flips)
	}
	snap := w.Snapshot()
	if !snap["queue"].Healthy || !snap["always"].Healthy {
		t.Fatalf("snapshot = %+v", snap)
	}
	if v := reg.Snapshot()[`test_watchdog_healthy{subsystem="queue"}`]; v != 1 {
		t.Fatalf("gauge = %v, want 1", v)
	}
}

func TestWatchdogStartStop(t *testing.T) {
	w := NewWatchdog(2 * time.Millisecond)
	var calls sync.WaitGroup
	calls.Add(3)
	var n int
	var mu sync.Mutex
	w.Add("tick", func() Status {
		mu.Lock()
		defer mu.Unlock()
		if n < 3 {
			n++
			calls.Done()
		}
		return OK()
	})
	w.Start()
	calls.Wait()
	w.Stop()
	w.Stop() // idempotent
}

func TestWatchdogStopWithoutStart(t *testing.T) {
	NewWatchdog(0).Stop()
}

func TestSLOWindowsAndBurn(t *testing.T) {
	tr := NewSLO(SLOConfig{
		Objective:        0.99,
		LatencyObjective: 0.90,
		LatencyTarget:    100 * time.Millisecond,
		Windows:          []time.Duration{10 * time.Second, time.Minute},
	})
	now := time.Unix(1_000_000, 0)
	tr.now = func() time.Time { return now }

	// 20 requests in the current second: 1 failure, 2 slow.
	for i := 0; i < 20; i++ {
		ok := i != 0
		lat := 10 * time.Millisecond
		if i < 2 {
			lat = time.Second
		}
		tr.Observe(ok, lat)
	}
	ws := tr.Windows()
	if len(ws) != 2 {
		t.Fatalf("windows = %d", len(ws))
	}
	short := ws[0]
	if short.Total != 20 || short.Errors != 1 || short.Slow != 2 {
		t.Fatalf("short window = %+v", short)
	}
	// errFrac 0.05 over a 0.01 budget → burn 5; slowFrac 0.1 over 0.1 → 1.
	if burn := short.AvailabilityBurn; burn < 4.99 || burn > 5.01 {
		t.Fatalf("availability burn = %v, want 5", burn)
	}
	if burn := short.LatencyBurn; burn < 0.99 || burn > 1.01 {
		t.Fatalf("latency burn = %v, want 1", burn)
	}
	if sr := short.SuccessRate; sr < 0.949 || sr > 0.951 {
		t.Fatalf("success rate = %v", sr)
	}

	// 15 seconds later the 10s window is empty, the 1m window still sees it.
	now = now.Add(15 * time.Second)
	ws = tr.Windows()
	if ws[0].Total != 0 || ws[0].AvailabilityBurn != 0 || ws[0].SuccessRate != 1 {
		t.Fatalf("expired short window = %+v", ws[0])
	}
	if ws[1].Total != 20 {
		t.Fatalf("long window = %+v", ws[1])
	}

	// Ring wraparound: after the long window passes, everything expires.
	now = now.Add(2 * time.Minute)
	if ws := tr.Windows(); ws[1].Total != 0 {
		t.Fatalf("expired long window = %+v", ws[1])
	}
	if total, errs, slow := tr.Totals(); total != 20 || errs != 1 || slow != 2 {
		t.Fatalf("lifetime totals = %d %d %d", total, errs, slow)
	}
}

func TestSLODefaultsAndNil(t *testing.T) {
	tr := NewSLO(SLOConfig{})
	cfg := tr.Config()
	if cfg.Objective != 0.999 || cfg.LatencyTarget != 30*time.Second || len(cfg.Windows) != 3 {
		t.Fatalf("defaults = %+v", cfg)
	}
	var nilTr *SLOTracker
	nilTr.Observe(true, time.Second)
	if nilTr.Windows() != nil {
		t.Fatal("nil tracker windows")
	}
}

func TestSLORegister(t *testing.T) {
	tr := NewSLO(SLOConfig{Windows: []time.Duration{10 * time.Second}})
	reg := obs.NewRegistry()
	tr.Register(reg, "lapserved")
	tr.Observe(false, time.Minute)
	snap := reg.Snapshot()
	if snap[`lapserved_slo_requests_total`] != 1 || snap[`lapserved_slo_request_errors_total`] != 1 {
		t.Fatalf("snapshot = %v", snap)
	}
	if snap[`lapserved_slo_burn_rate{slo="availability",window="10s"}`] <= 0 {
		t.Fatalf("burn gauge missing/zero: %v", snap)
	}
}
