package obs

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("lap_tests_total", "test counter")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	g := r.Gauge("lap_depth", "test gauge")
	g.Set(3.5)
	g.Add(-1.25)
	if got := g.Value(); got != 2.25 {
		t.Errorf("gauge = %v, want 2.25", got)
	}
}

func TestNilSafety(t *testing.T) {
	var r *Registry
	c := r.Counter("x_total", "nil registry hands out nil instruments")
	g := r.Gauge("x", "")
	h := r.Histogram("x_seconds", "", []float64{1})
	c.Inc()
	c.Add(3)
	g.Set(1)
	g.Add(1)
	h.Observe(0.5)
	r.CounterFunc("y_total", "", func() uint64 { return 1 })
	r.GaugeFunc("y", "", func() float64 { return 1 })
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Error("nil instruments must read zero")
	}
	var sb strings.Builder
	if n, err := r.WriteTo(&sb); n != 0 || err != nil || sb.Len() != 0 {
		t.Error("nil registry must write nothing")
	}
	if r.Snapshot() != nil {
		t.Error("nil registry snapshot must be nil")
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lap_run_seconds", "test histogram", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.1, 0.5, 5, 50} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Errorf("count = %d, want 5", h.Count())
	}
	if got, want := h.Sum(), 55.65; got < want-1e-9 || got > want+1e-9 {
		t.Errorf("sum = %v, want %v", got, want)
	}
	var sb strings.Builder
	if _, err := r.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	// Cumulative buckets: 0.05 and 0.1 land in le=0.1 (bounds are
	// inclusive), 0.5 in le=1, 5 in le=10, 50 only in +Inf.
	for _, line := range []string{
		`lap_run_seconds_bucket{le="0.1"} 2`,
		`lap_run_seconds_bucket{le="1"} 3`,
		`lap_run_seconds_bucket{le="10"} 4`,
		`lap_run_seconds_bucket{le="+Inf"} 5`,
		`lap_run_seconds_count 5`,
	} {
		if !strings.Contains(out, line+"\n") {
			t.Errorf("exposition missing %q:\n%s", line, out)
		}
	}
}

func TestExpBuckets(t *testing.T) {
	got := ExpBuckets(0.001, 2, 4)
	want := []float64{0.001, 0.002, 0.004, 0.008}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ExpBuckets = %v, want %v", got, want)
		}
	}
}

func TestExpositionFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("b_total", "second family").Add(2)
	r.Counter("a_total", "first family", L("kind", "x")).Add(1)
	r.Counter("a_total", "first family", L("kind", "y")).Add(3)
	r.GaugeFunc("c_depth", "sampled gauge", func() float64 { return 7 })

	var sb strings.Builder
	if _, err := r.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	want := `# HELP a_total first family
# TYPE a_total counter
a_total{kind="x"} 1
a_total{kind="y"} 3
# HELP b_total second family
# TYPE b_total counter
b_total 2
# HELP c_depth sampled gauge
# TYPE c_depth gauge
c_depth 7
`
	if sb.String() != want {
		t.Errorf("exposition:\n%s\nwant:\n%s", sb.String(), want)
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("esc_total", "esc", L("path", "a\"b\\c\nd")).Inc()
	var sb strings.Builder
	r.WriteTo(&sb)
	if want := `esc_total{path="a\"b\\c\nd"} 1`; !strings.Contains(sb.String(), want+"\n") {
		t.Errorf("escaped series missing %q in:\n%s", want, sb.String())
	}
}

func TestDuplicateAndInconsistentRegistrationPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("dup_total", "x")
	for name, fn := range map[string]func(){
		"duplicate series":   func() { r.Counter("dup_total", "x") },
		"inconsistent type":  func() { r.Gauge("dup_total", "x") },
		"invalid name":       func() { r.Counter("0bad", "x") },
		"invalid label name": func() { r.Counter("ok_total", "x", L("0bad", "v")) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: want panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestSnapshot(t *testing.T) {
	r := NewRegistry()
	r.Counter("s_total", "c", L("k", "v")).Add(9)
	h := r.Histogram("s_seconds", "h", []float64{1})
	h.Observe(0.5)
	h.Observe(2)
	snap := r.Snapshot()
	if snap[`s_total{k="v"}`] != 9 {
		t.Errorf("snapshot counter: %v", snap)
	}
	if snap["s_seconds_count"] != 2 || snap["s_seconds_sum"] != 2.5 {
		t.Errorf("snapshot histogram: %v", snap)
	}
}

// TestConcurrentMutation hammers the lock-free paths under the race
// detector.
func TestConcurrentMutation(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("cc_total", "c")
	g := r.Gauge("cg", "g")
	h := r.Histogram("ch_seconds", "h", ExpBuckets(0.001, 2, 10))
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(i*j) * 0.0001)
			}
		}(i)
	}
	// Scrape concurrently with the writers.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			var sb strings.Builder
			r.WriteTo(&sb)
		}
	}()
	wg.Wait()
	<-done
	if c.Value() != 8000 || g.Value() != 8000 || h.Count() != 8000 {
		t.Errorf("lost updates: c=%d g=%v h=%d", c.Value(), g.Value(), h.Count())
	}
}

// TestHostileLabelValueRoundTrips is the escaping regression test: a
// label value using every character the exposition format escapes (and
// a few it must pass through verbatim) must survive render → strict
// unescape unchanged, on both the full exposition and histogram bucket
// lines.
func TestHostileLabelValueRoundTrips(t *testing.T) {
	hostile := "a\\b\"c\nd{},= e\ttab\\n"
	r := NewRegistry()
	r.Counter("hostile_total", "h", L("path", hostile)).Inc()
	h := r.Histogram("hostile_seconds", "h", []float64{1}, L("path", hostile))
	h.Observe(0.5)

	var sb strings.Builder
	r.WriteTo(&sb)
	for _, line := range strings.Split(strings.TrimSuffix(sb.String(), "\n"), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		open := strings.Index(line, `{`)
		if open < 0 {
			t.Fatalf("series line lost its labels: %q", line)
		}
		// Extract the first label value with a strict escape-aware scan:
		// the parse a real Prometheus scraper performs.
		rest := line[open+1:]
		eq := strings.Index(rest, `="`)
		if eq < 0 {
			t.Fatalf("malformed label pair in %q", line)
		}
		if name := rest[:eq]; name != "path" {
			t.Fatalf("label name %q in %q", name, line)
		}
		var val strings.Builder
		i := eq + 2
		for ; i < len(rest); i++ {
			c := rest[i]
			if c == '\\' {
				i++
				if i >= len(rest) {
					t.Fatalf("dangling escape in %q", line)
				}
				switch rest[i] {
				case '\\':
					val.WriteByte('\\')
				case '"':
					val.WriteByte('"')
				case 'n':
					val.WriteByte('\n')
				default:
					t.Fatalf("invalid escape \\%c in %q", rest[i], line)
				}
				continue
			}
			if c == '"' {
				break
			}
			if c == '\n' {
				t.Fatalf("raw newline leaked into exposition line %q", line)
			}
			val.WriteByte(c)
		}
		if i >= len(rest) || rest[i] != '"' {
			t.Fatalf("unterminated label value in %q", line)
		}
		if val.String() != hostile {
			t.Errorf("label value did not round-trip:\n got %q\nwant %q\nline %q", val.String(), hostile, line)
		}
	}
}

// TestLabelNameRejectsColon pins the metric-vs-label charset split:
// colons are legal in metric names (recording-rule convention) but
// never in label names.
func TestLabelNameRejectsColon(t *testing.T) {
	r := NewRegistry()
	r.Counter("rule:metric_total", "colons are legal in metric names").Inc()
	defer func() {
		if recover() == nil {
			t.Fatal("label name with a colon registered without panic")
		}
	}()
	r.Counter("ok_total", "x", L("source:kind", "v"))
}

// TestSnapshotJSONRoundTrip: the Snapshot map is embedded verbatim in
// lapexp's -timings JSON, so it must survive marshal → unmarshal with
// keys and values intact (including labeled and histogram-derived keys).
func TestSnapshotJSONRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("rt_total", "c", L("kind", `quo"te`)).Add(3)
	r.Gauge("rt_depth", "g").Set(-2.5)
	h := r.Histogram("rt_seconds", "h", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	snap := r.Snapshot()

	data, err := json.Marshal(snap)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var back map[string]float64
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if len(back) != len(snap) {
		t.Fatalf("round-trip changed cardinality: %d -> %d", len(snap), len(back))
	}
	for k, v := range snap {
		if back[k] != v {
			t.Errorf("key %q: %v -> %v", k, v, back[k])
		}
	}
	if back[`rt_total{kind="quo\"te"}`] != 3 {
		t.Errorf("labeled counter lost: %v", back)
	}
	if back["rt_seconds_count"] != 2 {
		t.Errorf("histogram count lost: %v", back)
	}
}
