// Package journal is the tree's structured operational event log: a
// bounded in-memory ring of lifecycle events (runs starting and
// finishing, breaker transitions, checkpoint writes and restores, drain
// phases, fault-point hits, per-interval simulation telemetry) with
// fan-out to live subscribers, built for lapserved's GET /v1/events SSE
// stream and the /debug/bundle diagnostics artifact.
//
// Design:
//
//   - Never block the hot path: Emit appends to the ring and to each
//     subscriber's bounded queue under one short mutex hold; a slow
//     subscriber's queue drops its oldest events (counted, never
//     blocking). Network writes happen entirely outside the lock, in
//     the subscriber's own goroutine.
//   - One atomic load when idle: high-rate producers (the per-interval
//     telemetry bridge in internal/sim) gate on Streaming(), which is a
//     single atomic subscriber-count load — the exact discipline of
//     internal/fault's disarmed path and internal/obs/trace's disabled
//     tracer, pinned by BenchmarkStreamingGate.
//   - Replayable sequence: every event carries a process-monotone Seq.
//     A subscriber may ask to replay from a sequence number; events
//     still resident in the ring are redelivered, so an SSE client can
//     reconnect with Last-Event-ID and observe a strictly increasing
//     sequence with no duplicates (a gap means the ring evicted events
//     while it was away — detectable, never silent).
//   - slog correlation: an attached logger receives one structured line
//     per event (kind, run, trace_id, fields), so the journal, the
//     request log, and /v1/trace/{id} all correlate on the same IDs.
//
// A nil *Journal is valid everywhere and records nothing, so packages
// can thread an optional journal without branching.
package journal

import (
	"context"
	"errors"
	"log/slog"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Event is one journal entry. Fields is free-form structured payload;
// encoding/json renders map keys sorted, so serialized events are
// deterministic for a given payload.
type Event struct {
	// Seq is the process-monotone sequence number, assigned by Emit.
	Seq uint64 `json:"seq"`
	// TS is the emission wall-clock time in Unix nanoseconds.
	TS int64 `json:"ts"`
	// Kind names the event in dotted taxonomy form ("run.start",
	// "breaker.transition", "checkpoint.write", "interval", ...).
	Kind string `json:"kind"`
	// Run correlates the event to one simulation cell ("workload|policy")
	// when it concerns a specific run.
	Run string `json:"run,omitempty"`
	// Trace carries the originating request's trace ID when known, the
	// same ID the request log and GET /v1/trace/{id} use.
	Trace string `json:"trace,omitempty"`
	// Msg is an optional human-oriented summary.
	Msg string `json:"msg,omitempty"`
	// Fields is the event's structured payload.
	Fields map[string]any `json:"fields,omitempty"`
}

// F builds an event Fields map from alternating key/value pairs; odd
// trailing arguments are dropped. Keys must be strings.
func F(kv ...any) map[string]any {
	if len(kv) < 2 {
		return nil
	}
	m := make(map[string]any, len(kv)/2)
	for i := 0; i+1 < len(kv); i += 2 {
		k, ok := kv[i].(string)
		if !ok {
			continue
		}
		m[k] = kv[i+1]
	}
	return m
}

// DefaultCapacity is New's ring bound when capacity <= 0: generous for
// a long-lived server's lifecycle events plus recent interval streams,
// at roughly a few MB.
const DefaultCapacity = 4096

// Journal is the bounded event ring with subscriber fan-out. Construct
// with New; a nil Journal is valid and no-ops.
type Journal struct {
	logger *slog.Logger
	active atomic.Int32 // live subscriber count, read by Streaming

	mu          sync.Mutex
	buf         []Event
	next        int // ring cursor
	n           int // resident events
	seq         uint64
	ringDropped uint64 // events overwritten in the ring
	subDropped  uint64 // events dropped across subscriber queues
	emitted     uint64
	subs        map[*Subscriber]struct{}
}

// New returns a journal whose ring holds at most capacity events
// (capacity <= 0 selects DefaultCapacity). logger optionally receives
// one structured line per event; nil logs nothing.
func New(capacity int, logger *slog.Logger) *Journal {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Journal{
		logger: logger,
		buf:    make([]Event, capacity),
		subs:   map[*Subscriber]struct{}{},
	}
}

// Streaming reports whether at least one live subscriber exists. This is
// the gate high-rate producers (per-interval telemetry) check before
// building events: one atomic load, nil-safe, no mutex.
func (j *Journal) Streaming() bool {
	return j != nil && j.active.Load() > 0
}

// Emit records one event: stamps Seq and TS, appends to the ring
// (overwriting the oldest event when full), fans out to matching
// subscribers (dropping each full subscriber's oldest, never blocking),
// and logs to the attached slog logger. Nil-safe.
func (j *Journal) Emit(e Event) {
	if j == nil {
		return
	}
	if e.TS == 0 {
		e.TS = time.Now().UnixNano()
	}
	j.mu.Lock()
	j.seq++
	e.Seq = j.seq
	j.emitted++
	if j.n == len(j.buf) {
		j.ringDropped++
	} else {
		j.n++
	}
	j.buf[j.next] = e
	j.next = (j.next + 1) % len(j.buf)
	for s := range j.subs {
		if s.filter.match(e) {
			s.push(e)
		}
	}
	j.mu.Unlock()
	if j.logger != nil {
		attrs := make([]slog.Attr, 0, 4+len(e.Fields))
		attrs = append(attrs, slog.Uint64("seq", e.Seq))
		if e.Run != "" {
			attrs = append(attrs, slog.String("run", e.Run))
		}
		if e.Trace != "" {
			attrs = append(attrs, slog.String("trace_id", e.Trace))
		}
		if e.Msg != "" {
			attrs = append(attrs, slog.String("msg", e.Msg))
		}
		for k, v := range e.Fields {
			attrs = append(attrs, slog.Any(k, v))
		}
		j.logger.LogAttrs(context.Background(), slog.LevelInfo, "event:"+e.Kind, attrs...)
	}
}

// Recent returns up to max resident events — the newest max, in
// oldest-first order (max <= 0 returns the whole ring). The slice is a
// copy.
func (j *Journal) Recent(max int) []Event {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	n := j.n
	if max > 0 && max < n {
		n = max
	}
	out := make([]Event, 0, n)
	// Oldest resident event sits n slots behind the cursor.
	start := j.next - n
	if start < 0 {
		start += len(j.buf)
	}
	for i := 0; i < n; i++ {
		out = append(out, j.buf[(start+i)%len(j.buf)])
	}
	return out
}

// Stats is a point-in-time counter snapshot.
type Stats struct {
	// Emitted counts events ever emitted; Seq is the latest sequence
	// number assigned (equal to Emitted).
	Emitted uint64 `json:"emitted"`
	// RingDropped counts events the bounded ring overwrote.
	RingDropped uint64 `json:"ring_dropped,omitempty"`
	// SubDropped counts events dropped from full subscriber queues.
	SubDropped uint64 `json:"sub_dropped,omitempty"`
	// Subscribers is the live subscriber count.
	Subscribers int `json:"subscribers"`
}

// Snapshot reads the journal's counters.
func (j *Journal) Snapshot() Stats {
	if j == nil {
		return Stats{}
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return Stats{
		Emitted:     j.emitted,
		RingDropped: j.ringDropped,
		SubDropped:  j.subDropped,
		Subscribers: len(j.subs),
	}
}

// CloseSubscribers closes every live subscriber (each drains its queued
// events, then sees ErrClosed). The journal itself stays usable — the
// ring keeps recording for Recent and the diagnostics bundle.
func (j *Journal) CloseSubscribers() {
	if j == nil {
		return
	}
	j.mu.Lock()
	subs := make([]*Subscriber, 0, len(j.subs))
	for s := range j.subs {
		subs = append(subs, s)
	}
	j.mu.Unlock()
	for _, s := range subs {
		s.Close()
	}
}

// Filter selects the events a subscriber receives. The zero Filter
// matches everything.
type Filter struct {
	// Kinds, when non-empty, admits only events whose Kind matches one
	// entry exactly, or by prefix when the entry ends in "*" ("run.*").
	Kinds []string
	// Run, when non-empty, admits only events with this exact Run.
	Run string
}

func (f Filter) match(e Event) bool {
	if f.Run != "" && e.Run != f.Run {
		return false
	}
	if len(f.Kinds) == 0 {
		return true
	}
	for _, k := range f.Kinds {
		if p, ok := strings.CutSuffix(k, "*"); ok {
			if strings.HasPrefix(e.Kind, p) {
				return true
			}
		} else if e.Kind == k {
			return true
		}
	}
	return false
}

// DefaultSubscriberBuffer bounds a subscriber's queue when Subscribe is
// given buffer <= 0.
const DefaultSubscriberBuffer = 1024

// ErrClosed is returned by Subscriber.Next after Close once the queue
// has fully drained.
var ErrClosed = errors.New("journal: subscriber closed")

// Subscriber is one live consumer: a bounded queue filled by Emit and
// drained by Next. All state is guarded by the journal's mutex; the
// notify channel wakes a blocked Next.
type Subscriber struct {
	j      *Journal
	filter Filter
	max    int
	queue  []Event
	drops  uint64 // dropped-oldest since the last Next
	closed bool
	notify chan struct{}
}

// Subscribe registers a consumer. from > 0 first replays the resident
// ring events with Seq >= from that match the filter (a reconnecting
// client passes last-seen+1); buffer bounds the queue (<= 0 selects
// DefaultSubscriberBuffer). The returned subscriber must be Closed.
// Subscribing on a nil journal returns a subscriber that is already
// closed.
func (j *Journal) Subscribe(buffer int, from uint64, f Filter) *Subscriber {
	if buffer <= 0 {
		buffer = DefaultSubscriberBuffer
	}
	s := &Subscriber{j: j, filter: f, max: buffer, notify: make(chan struct{}, 1)}
	if j == nil {
		s.closed = true
		return s
	}
	j.mu.Lock()
	if from > 0 {
		for _, e := range j.recentLocked() {
			if e.Seq >= from && f.match(e) {
				s.push(e)
			}
		}
	}
	j.subs[s] = struct{}{}
	j.mu.Unlock()
	j.active.Add(1)
	return s
}

// recentLocked is Recent's body for callers already holding j.mu.
func (j *Journal) recentLocked() []Event {
	out := make([]Event, 0, j.n)
	start := j.next - j.n
	if start < 0 {
		start += len(j.buf)
	}
	for i := 0; i < j.n; i++ {
		out = append(out, j.buf[(start+i)%len(j.buf)])
	}
	return out
}

// push appends one event to the queue, dropping the oldest when full.
// Caller holds j.mu (or, during Subscribe replay, the subscriber is not
// yet visible to Emit).
func (s *Subscriber) push(e Event) {
	if len(s.queue) >= s.max {
		copy(s.queue, s.queue[1:])
		s.queue[len(s.queue)-1] = e
		s.drops++
		if s.j != nil {
			s.j.subDropped++
		}
	} else {
		s.queue = append(s.queue, e)
	}
	select {
	case s.notify <- struct{}{}:
	default:
	}
}

// Next blocks until events are queued, then returns the whole batch plus
// the number of events dropped from this subscriber's queue since the
// previous Next (drop-oldest backpressure: the caller was too slow).
// It returns ctx.Err on context cancellation and ErrClosed once the
// subscriber is closed and drained.
func (s *Subscriber) Next(ctx context.Context) ([]Event, uint64, error) {
	if s.j == nil {
		return nil, 0, ErrClosed
	}
	for {
		s.j.mu.Lock()
		if len(s.queue) > 0 {
			batch := s.queue
			drops := s.drops
			s.queue = nil
			s.drops = 0
			s.j.mu.Unlock()
			return batch, drops, nil
		}
		closed := s.closed
		s.j.mu.Unlock()
		if closed {
			return nil, 0, ErrClosed
		}
		select {
		case <-s.notify:
		case <-ctx.Done():
			return nil, 0, ctx.Err()
		}
	}
}

// Close unregisters the subscriber. Queued events remain drainable by
// Next until empty; then Next reports ErrClosed. Idempotent.
func (s *Subscriber) Close() {
	if s.j == nil {
		return
	}
	s.j.mu.Lock()
	_, live := s.j.subs[s]
	if live {
		delete(s.j.subs, s)
	}
	s.closed = true
	s.j.mu.Unlock()
	if live {
		s.j.active.Add(-1)
	}
	select {
	case s.notify <- struct{}{}:
	default:
	}
}
