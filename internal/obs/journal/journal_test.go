package journal

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func drain(t *testing.T, s *Subscriber, want int) ([]Event, uint64) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	var out []Event
	var drops uint64
	for len(out) < want {
		batch, d, err := s.Next(ctx)
		if err != nil {
			t.Fatalf("Next: %v (got %d/%d events)", err, len(out), want)
		}
		out = append(out, batch...)
		drops += d
	}
	return out, drops
}

func TestEmitSubscribeBasic(t *testing.T) {
	j := New(16, nil)
	if j.Streaming() {
		t.Fatal("fresh journal reports streaming")
	}
	s := j.Subscribe(0, 0, Filter{})
	defer s.Close()
	if !j.Streaming() {
		t.Fatal("journal with subscriber not streaming")
	}
	j.Emit(Event{Kind: "run.start", Run: "w|p", Trace: "req-000001"})
	j.Emit(Event{Kind: "run.finish", Run: "w|p", Fields: F("cycles", 42)})
	got, drops := drain(t, s, 2)
	if drops != 0 {
		t.Fatalf("unexpected drops: %d", drops)
	}
	if got[0].Kind != "run.start" || got[1].Kind != "run.finish" {
		t.Fatalf("kinds = %q, %q", got[0].Kind, got[1].Kind)
	}
	if got[0].Seq != 1 || got[1].Seq != 2 {
		t.Fatalf("seqs = %d, %d; want 1, 2", got[0].Seq, got[1].Seq)
	}
	if got[0].TS == 0 {
		t.Fatal("event missing timestamp")
	}
	if v, ok := got[1].Fields["cycles"].(int); !ok || v != 42 {
		t.Fatalf("fields = %v", got[1].Fields)
	}
}

func TestNilJournalSafe(t *testing.T) {
	var j *Journal
	if j.Streaming() {
		t.Fatal("nil journal streaming")
	}
	j.Emit(Event{Kind: "x"}) // must not panic
	if got := j.Recent(0); got != nil {
		t.Fatalf("Recent on nil = %v", got)
	}
	j.CloseSubscribers()
	if st := j.Snapshot(); st.Emitted != 0 {
		t.Fatalf("Snapshot on nil = %+v", st)
	}
	s := j.Subscribe(4, 0, Filter{})
	if _, _, err := s.Next(context.Background()); err != ErrClosed {
		t.Fatalf("Next on nil-journal subscriber: %v, want ErrClosed", err)
	}
	s.Close()
}

func TestFilterKindAndRun(t *testing.T) {
	j := New(32, nil)
	s := j.Subscribe(0, 0, Filter{Kinds: []string{"run.*", "drain.begin"}, Run: ""})
	defer s.Close()
	byRun := j.Subscribe(0, 0, Filter{Run: "a|p"})
	defer byRun.Close()

	j.Emit(Event{Kind: "run.start", Run: "a|p"})
	j.Emit(Event{Kind: "interval", Run: "a|p"})
	j.Emit(Event{Kind: "drain.begin"})
	j.Emit(Event{Kind: "drain.end"})
	j.Emit(Event{Kind: "run.finish", Run: "b|p"})

	got, _ := drain(t, s, 3)
	kinds := []string{got[0].Kind, got[1].Kind, got[2].Kind}
	want := []string{"run.start", "drain.begin", "run.finish"}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("filtered kinds = %v, want %v", kinds, want)
		}
	}
	gotRun, _ := drain(t, byRun, 2)
	if gotRun[0].Kind != "run.start" || gotRun[1].Kind != "interval" {
		t.Fatalf("run-filtered kinds = %q, %q", gotRun[0].Kind, gotRun[1].Kind)
	}
}

func TestRingBoundAndRecent(t *testing.T) {
	j := New(4, nil)
	for i := 0; i < 10; i++ {
		j.Emit(Event{Kind: fmt.Sprintf("k%d", i)})
	}
	got := j.Recent(0)
	if len(got) != 4 {
		t.Fatalf("Recent len = %d, want 4", len(got))
	}
	for i, e := range got {
		if want := uint64(7 + i); e.Seq != want {
			t.Fatalf("Recent[%d].Seq = %d, want %d", i, e.Seq, want)
		}
	}
	// Recent(max) keeps the newest max events.
	if got2 := j.Recent(2); len(got2) != 2 || got2[0].Seq != 9 || got2[1].Seq != 10 {
		t.Fatalf("Recent(2) = %+v", got2)
	}
	st := j.Snapshot()
	if st.Emitted != 10 || st.RingDropped != 6 {
		t.Fatalf("stats = %+v, want emitted 10 ring_dropped 6", st)
	}
}

// TestSlowSubscriberDropsOldest pins the backpressure contract: a
// subscriber that never drains loses its oldest events (counted), and
// the emitter never blocks.
func TestSlowSubscriberDropsOldest(t *testing.T) {
	j := New(64, nil)
	s := j.Subscribe(4, 0, Filter{})
	defer s.Close()
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 20; i++ {
			j.Emit(Event{Kind: "burst"})
		}
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("emitter blocked on slow subscriber")
	}
	got, drops := drain(t, s, 4)
	if drops != 16 {
		t.Fatalf("drops = %d, want 16", drops)
	}
	// Drop-oldest: the survivors are the newest four, in order.
	for i, e := range got {
		if want := uint64(17 + i); e.Seq != want {
			t.Fatalf("survivor[%d].Seq = %d, want %d", i, e.Seq, want)
		}
	}
	if st := j.Snapshot(); st.SubDropped != 16 {
		t.Fatalf("journal SubDropped = %d, want 16", st.SubDropped)
	}
}

// TestReplayMonotoneAcrossReconnect pins the reconnect contract: a
// subscriber that disconnects and resubscribes from last-seen+1 observes
// a strictly increasing sequence with no duplicates and no gaps (while
// the ring still holds the span).
func TestReplayMonotoneAcrossReconnect(t *testing.T) {
	j := New(128, nil)
	s := j.Subscribe(0, 0, Filter{})
	for i := 0; i < 5; i++ {
		j.Emit(Event{Kind: "a"})
	}
	got, _ := drain(t, s, 5)
	last := got[len(got)-1].Seq
	s.Close()

	// Events emitted while disconnected.
	for i := 0; i < 7; i++ {
		j.Emit(Event{Kind: "b"})
	}
	s2 := j.Subscribe(0, last+1, Filter{})
	defer s2.Close()
	for i := 0; i < 3; i++ {
		j.Emit(Event{Kind: "c"})
	}
	got2, _ := drain(t, s2, 10)
	seq := last
	for i, e := range got2 {
		if e.Seq != seq+1 {
			t.Fatalf("event %d: seq %d after %d (gap or duplicate)", i, e.Seq, seq)
		}
		seq = e.Seq
	}
	if seq != 15 {
		t.Fatalf("final seq = %d, want 15", seq)
	}
}

func TestReplayFilteredFromSeq(t *testing.T) {
	j := New(64, nil)
	j.Emit(Event{Kind: "keep"})
	j.Emit(Event{Kind: "skip"})
	j.Emit(Event{Kind: "keep"})
	s := j.Subscribe(0, 2, Filter{Kinds: []string{"keep"}})
	defer s.Close()
	got, _ := drain(t, s, 1)
	if got[0].Seq != 3 || got[0].Kind != "keep" {
		t.Fatalf("replayed %+v, want seq 3 kind keep", got[0])
	}
}

func TestCloseDrainsThenErrClosed(t *testing.T) {
	j := New(16, nil)
	s := j.Subscribe(0, 0, Filter{})
	j.Emit(Event{Kind: "x"})
	s.Close()
	got, _, err := s.Next(context.Background())
	if err != nil || len(got) != 1 {
		t.Fatalf("Next after close = %v events, err %v; want the queued event", got, err)
	}
	if _, _, err := s.Next(context.Background()); err != ErrClosed {
		t.Fatalf("drained Next err = %v, want ErrClosed", err)
	}
	if j.Streaming() {
		t.Fatal("journal still streaming after sole subscriber closed")
	}
	s.Close() // idempotent
}

func TestCloseSubscribers(t *testing.T) {
	j := New(16, nil)
	s1 := j.Subscribe(0, 0, Filter{})
	s2 := j.Subscribe(0, 0, Filter{})
	j.CloseSubscribers()
	if _, _, err := s1.Next(context.Background()); err != ErrClosed {
		t.Fatalf("s1 err = %v", err)
	}
	if _, _, err := s2.Next(context.Background()); err != ErrClosed {
		t.Fatalf("s2 err = %v", err)
	}
	if j.Streaming() {
		t.Fatal("streaming after CloseSubscribers")
	}
	// Ring still records.
	j.Emit(Event{Kind: "after"})
	if got := j.Recent(0); len(got) != 1 || got[0].Kind != "after" {
		t.Fatalf("Recent after CloseSubscribers = %+v", got)
	}
}

func TestNextContextCancel(t *testing.T) {
	j := New(16, nil)
	s := j.Subscribe(0, 0, Filter{})
	defer s.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, _, err := s.Next(ctx); err != context.DeadlineExceeded {
		t.Fatalf("Next err = %v, want DeadlineExceeded", err)
	}
}

// TestHammerRace is the -race hammer from the issue: concurrent
// emitters, subscribers connecting/draining/closing, and a
// CloseSubscribers sweep, all at once. It asserts per-subscriber
// sequence monotonicity; the race detector asserts the rest.
func TestHammerRace(t *testing.T) {
	j := New(256, nil)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	var emitted atomic.Uint64

	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				j.Emit(Event{Kind: "hammer", Run: fmt.Sprintf("g%d", g%2)})
				emitted.Add(1)
			}
		}(g)
	}
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 30; i++ {
				s := j.Subscribe(8, uint64(i), Filter{Run: fmt.Sprintf("g%d", g%2)})
				ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
				var last uint64
				for {
					batch, _, err := s.Next(ctx)
					if err != nil {
						break
					}
					for _, e := range batch {
						if e.Seq <= last {
							cancel()
							s.Close()
							t.Errorf("non-monotone seq %d after %d", e.Seq, last)
							return
						}
						last = e.Seq
					}
				}
				cancel()
				s.Close()
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 20; i++ {
			j.CloseSubscribers()
			time.Sleep(time.Millisecond)
		}
	}()
	time.Sleep(150 * time.Millisecond)
	close(stop)
	wg.Wait()
	if st := j.Snapshot(); st.Emitted != emitted.Load() {
		t.Fatalf("journal emitted %d, producers emitted %d", st.Emitted, emitted.Load())
	}
}

// BenchmarkStreamingGate pins the disabled-path cost the acceptance
// criteria require: with no subscribers, the producers' gate is a single
// atomic load (same discipline as the tracer's disabled path and
// internal/fault's disarmed path). Expect well under 2 ns/op.
func BenchmarkStreamingGate(b *testing.B) {
	j := New(64, nil)
	var hits int
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if j.Streaming() {
			hits++
		}
	}
	if hits != 0 {
		b.Fatal("unexpected streaming state")
	}
}

// BenchmarkStreamingGateNil is the fully-disabled variant (no journal
// constructed at all): one nil check.
func BenchmarkStreamingGateNil(b *testing.B) {
	var j *Journal
	var hits int
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if j.Streaming() {
			hits++
		}
	}
	if hits != 0 {
		b.Fatal("unexpected streaming state")
	}
}

// BenchmarkEmitNoSubscribers measures ring-only emission (lifecycle
// events always record, even unwatched).
func BenchmarkEmitNoSubscribers(b *testing.B) {
	j := New(1024, nil)
	e := Event{Kind: "run.finish", Run: "w|p", TS: 1}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		j.Emit(e)
	}
}

// BenchmarkEmitOneSubscriber measures fan-out cost with one live (never
// draining, hence dropping) subscriber.
func BenchmarkEmitOneSubscriber(b *testing.B) {
	j := New(1024, nil)
	s := j.Subscribe(256, 0, Filter{})
	defer s.Close()
	e := Event{Kind: "interval", Run: "w|p", TS: 1}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		j.Emit(e)
	}
}
