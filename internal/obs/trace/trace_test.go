package trace

import (
	"context"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestSpanNestingAndContextPropagation(t *testing.T) {
	tr := New(64)
	ctx, root := tr.Root(context.Background(), "request", Str("id", "r1"))
	if root == nil {
		t.Fatal("enabled tracer returned nil root span")
	}
	if FromContext(ctx) != root {
		t.Fatal("ctx does not carry the root span")
	}
	ctx2, child := Start(ctx, "queue_wait")
	if child == nil {
		t.Fatal("Start under a root span returned nil")
	}
	if FromContext(ctx2) != child {
		t.Fatal("child ctx does not carry the child span")
	}
	_, grand := Start(ctx2, "execute", Bool("hit", false))
	grand.End()
	child.End()
	root.End()

	evs := tr.Events()
	if len(evs) != 3 {
		t.Fatalf("got %d events, want 3", len(evs))
	}
	// Spans end innermost-first.
	if evs[0].Name != "execute" || evs[1].Name != "queue_wait" || evs[2].Name != "request" {
		t.Fatalf("unexpected order: %s, %s, %s", evs[0].Name, evs[1].Name, evs[2].Name)
	}
	if evs[1].Parent != root.ID() {
		t.Fatalf("queue_wait parent = %d, want root %d", evs[1].Parent, root.ID())
	}
	if evs[0].Parent != evs[1].ID {
		t.Fatalf("execute parent = %d, want queue_wait %d", evs[0].Parent, evs[0].ID)
	}
	for _, ev := range evs {
		if ev.Track != root.ID() {
			t.Fatalf("span %q on track %d, want root track %d", ev.Name, ev.Track, root.ID())
		}
	}
}

func TestDisabledAndNilSafety(t *testing.T) {
	var nilT *Tracer
	if nilT.Enabled() {
		t.Fatal("nil tracer reports enabled")
	}
	ctx, sp := nilT.Root(context.Background(), "x")
	if sp != nil {
		t.Fatal("nil tracer handed out a span")
	}
	sp.SetAttr(Str("k", "v")) // must not panic
	sp.End()
	if _, sp2 := Start(ctx, "child"); sp2 != nil {
		t.Fatal("Start without a span in ctx handed out a span")
	}
	nilT.Emit(Event{Phase: PhaseSpan})
	if nilT.Len() != 0 || nilT.Dropped() != 0 || nilT.Events() != nil {
		t.Fatal("nil tracer holds events")
	}

	tr := New(8)
	tr.SetEnabled(false)
	if _, sp := tr.Root(context.Background(), "x"); sp != nil {
		t.Fatal("disabled tracer handed out a span")
	}
	tr.Emit(Event{Phase: PhaseSpan, Name: "dropped"})
	if tr.Len() != 0 {
		t.Fatal("disabled tracer recorded an event")
	}
}

// TestRingEvictionOrder pins the bounded ring's contract: with more
// emissions than capacity, exactly the newest `capacity` events survive,
// oldest first.
func TestRingEvictionOrder(t *testing.T) {
	const capacity, emits = 8, 29
	tr := New(capacity)
	for i := 0; i < emits; i++ {
		tr.Emit(Event{Phase: PhaseInstant, Name: "e", TS: int64(i)})
	}
	if got := tr.Dropped(); got != emits-capacity {
		t.Fatalf("dropped = %d, want %d", got, emits-capacity)
	}
	evs := tr.Events()
	if len(evs) != capacity {
		t.Fatalf("resident = %d, want %d", len(evs), capacity)
	}
	for i, ev := range evs {
		if want := int64(emits - capacity + i); ev.TS != want {
			t.Fatalf("event %d has TS %d, want %d (eviction order broken)", i, ev.TS, want)
		}
	}
}

// TestRingEvictionOrderConcurrent hammers the ring from many goroutines
// (run under -race) and asserts the order invariant that survives
// concurrency: resident events are in strictly increasing Seq order,
// the ring is exactly full, and dropped+resident equals emissions.
func TestRingEvictionOrderConcurrent(t *testing.T) {
	const capacity, writers, perWriter = 64, 8, 200
	tr := New(capacity)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				tr.Emit(Event{Phase: PhaseInstant, Name: "e", Track: uint64(w)})
			}
		}(w)
	}
	wg.Wait()
	evs := tr.Events()
	if len(evs) != capacity {
		t.Fatalf("resident = %d, want full ring %d", len(evs), capacity)
	}
	if got := tr.Dropped(); got != writers*perWriter-capacity {
		t.Fatalf("dropped = %d, want %d", got, writers*perWriter-capacity)
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].Seq <= evs[i-1].Seq {
			t.Fatalf("events out of emission order: seq[%d]=%d <= seq[%d]=%d",
				i, evs[i].Seq, i-1, evs[i-1].Seq)
		}
	}
	// The survivors must be the newest emissions: every resident Seq is
	// greater than the count of dropped events' minimum possible... the
	// strongest portable claim is that the oldest survivor's Seq exceeds
	// the number of evicted emissions could allow; with a single mutex
	// the survivors are exactly the last `capacity` Seq values assigned.
	if evs[len(evs)-1].Seq-evs[0].Seq != capacity-1 {
		t.Fatalf("survivors are not contiguous: first seq %d, last %d, capacity %d",
			evs[0].Seq, evs[len(evs)-1].Seq, capacity)
	}
}

func TestChromeExportShape(t *testing.T) {
	tr := New(64)
	tr.NameTrack(PidSim, 7, "LAP")
	tr.Emit(Event{Phase: PhaseSpan, Name: "run", Pid: PidSim, Track: 7, TS: 0, Dur: 100, ID: 7})
	tr.Emit(Event{Phase: PhaseSpan, Name: "warmup", Pid: PidSim, Track: 7, TS: 0, Dur: 10, ID: 8, Parent: 7})
	tr.Emit(Event{Phase: PhaseCounter, Name: "misses", Pid: PidSim, Track: 7, TS: 50,
		Attrs: []Attr{Uint("misses", 41)}})

	var b strings.Builder
	if err := tr.WriteChromeTrace(&b); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(b.String()), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	var phases []string
	var names []string
	for _, ev := range doc.TraceEvents {
		phases = append(phases, ev["ph"].(string))
		names = append(names, ev["name"].(string))
	}
	// Two process_name + one thread_name metadata, then the events.
	want := []string{"M", "M", "M", "X", "X", "C"}
	if len(phases) != len(want) {
		t.Fatalf("got %d events (%v), want %d", len(phases), names, len(want))
	}
	for i := range want {
		if phases[i] != want[i] {
			t.Fatalf("event %d (%s) has ph %q, want %q", i, names[i], phases[i], want[i])
		}
	}
	run := doc.TraceEvents[3]
	if run["name"] != "run" || run["dur"].(float64) != 100 {
		t.Fatalf("run span mangled: %v", run)
	}
	warm := doc.TraceEvents[4]
	if warm["args"].(map[string]any)["parent_id"].(float64) != 7 {
		t.Fatalf("warmup span lost its parent: %v", warm)
	}
	ctr := doc.TraceEvents[5]
	if ctr["args"].(map[string]any)["misses"].(float64) != 41 {
		t.Fatalf("counter sample mangled: %v", ctr)
	}
}

func TestJSONLExport(t *testing.T) {
	tr := New(16)
	ctx, root := tr.Root(context.Background(), "request")
	_, child := Start(ctx, "execute", Str("cell", "WH1|LAP"))
	child.End()
	root.End()

	var b strings.Builder
	if err := tr.WriteJSONL(&b); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d JSONL lines, want 2", len(lines))
	}
	var rec jsonlEvent
	if err := json.Unmarshal([]byte(lines[0]), &rec); err != nil {
		t.Fatalf("line 0 is not valid JSON: %v", err)
	}
	if rec.Name != "execute" || rec.Parent != root.ID() || rec.Attrs["cell"] != "WH1|LAP" {
		t.Fatalf("unexpected first record: %+v", rec)
	}
}

// BenchmarkRootDisabled measures the disarmed fast path at a span
// creation site: a disabled tracer must cost one atomic load.
func BenchmarkRootDisabled(b *testing.B) {
	tr := New(8)
	tr.SetEnabled(false)
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, sp := tr.Root(ctx, "request")
		sp.End()
	}
}

// BenchmarkStartNoSpan measures the other disarmed shape: Start on a
// context carrying no span (an un-traced request), one ctx lookup.
func BenchmarkStartNoSpan(b *testing.B) {
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, sp := Start(ctx, "memo.compute")
		sp.End()
	}
}

// BenchmarkEmitEnabled sizes the armed cost for comparison.
func BenchmarkEmitEnabled(b *testing.B) {
	tr := New(1024)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Emit(Event{Phase: PhaseInstant, Name: "e"})
	}
}
