// Package trace is a dependency-free execution tracer for the
// simulation stack: nested spans with attributes, propagated explicitly
// through context.Context, recorded into a bounded in-memory ring and
// exported as Chrome trace-event JSON (loadable in Perfetto or
// chrome://tracing) or a compact JSONL stream.
//
// Design:
//
//   - Zero overhead when disabled: the only cost on an un-traced path is
//     one atomic load (Tracer.Enabled) or one context value lookup that
//     finds no span — the same discipline as internal/fault's disarmed
//     fast path. A nil *Tracer and a nil *Span are valid receivers whose
//     methods no-op, so instrumentation points never branch.
//   - Bounded memory: events land in a fixed-capacity ring; when full,
//     the oldest event is overwritten and Dropped advances. Eviction
//     order is emission order — every surviving event's Seq is larger
//     than every dropped one's — which holds under concurrent writers
//     because Seq is assigned under the same mutex that advances the
//     ring cursor.
//   - Two time bases: wall-clock spans (HTTP requests, experiment
//     cells) record microseconds since the tracer's epoch on PidWall;
//     simulated-time events (internal/sim's interval telemetry) record
//     simulated cycles on PidSim, so a single file can carry both and
//     Perfetto renders them as separate processes.
package trace

import (
	"context"
	"sync"
	"sync/atomic"
	"time"
)

// Process IDs separating the two time bases in exported files.
const (
	// PidWall marks wall-clock events (ts/dur in microseconds).
	PidWall = 1
	// PidSim marks simulated-time events (ts/dur in simulated cycles,
	// rendered by trace viewers as if they were microseconds).
	PidSim = 2
)

// Event phases, following the Chrome trace-event format.
const (
	// PhaseSpan is a complete duration event (ph "X").
	PhaseSpan = 'X'
	// PhaseCounter is a counter sample (ph "C").
	PhaseCounter = 'C'
	// PhaseInstant is a zero-duration marker (ph "i").
	PhaseInstant = 'i'
)

// Attr is one key/value attribute on a span or counter event. Value must
// be a string, bool, or any integer/float type — the JSON exporters
// marshal it as-is.
type Attr struct {
	Key   string
	Value any
}

// Str, Int, Uint, Bool, and Float construct Attrs.
func Str(k, v string) Attr           { return Attr{Key: k, Value: v} }
func Int(k string, v int64) Attr     { return Attr{Key: k, Value: v} }
func Uint(k string, v uint64) Attr   { return Attr{Key: k, Value: v} }
func Bool(k string, v bool) Attr     { return Attr{Key: k, Value: v} }
func Float(k string, v float64) Attr { return Attr{Key: k, Value: v} }

// Event is one recorded trace event. Spans (PhaseSpan) carry Dur and the
// span/parent IDs; counters (PhaseCounter) carry numeric Attrs sampled
// at TS. Track is the trace viewer's thread lane (tid): sequential spans
// of one request share a track and nest by containment, concurrent
// cells get one track each.
type Event struct {
	Seq    uint64 // emission order, assigned by the tracer
	Phase  byte
	Name   string
	Pid    int
	Track  uint64
	TS     int64
	Dur    int64
	ID     uint64
	Parent uint64
	Attrs  []Attr
}

// Tracer records events into a bounded ring. Construct with New; a nil
// Tracer is valid and records nothing.
type Tracer struct {
	enabled atomic.Bool
	seq     atomic.Uint64 // span and event IDs
	epoch   time.Time

	mu      sync.Mutex
	buf     []Event
	next    int // ring cursor
	n       int // resident events
	dropped uint64
	tracks  map[trackKey]string // viewer lane names, emitted at export
}

type trackKey struct {
	pid   int
	track uint64
}

// DefaultCapacity is New's ring bound when capacity <= 0: enough for a
// long lapsim run (run + warmup + hundreds of epochs × several counter
// series × several policies) at a few MB of memory.
const DefaultCapacity = 1 << 16

// New returns an enabled tracer whose ring holds at most capacity
// events (capacity <= 0 selects DefaultCapacity).
func New(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	t := &Tracer{
		epoch:  time.Now(),
		buf:    make([]Event, capacity),
		tracks: map[trackKey]string{},
	}
	t.enabled.Store(true)
	return t
}

// Enabled reports whether the tracer records events: one atomic load,
// nil-safe, the hot-path gate for every instrumentation point.
func (t *Tracer) Enabled() bool { return t != nil && t.enabled.Load() }

// SetEnabled arms or disarms the tracer. Disarmed tracers drop Emit and
// hand out nil spans; already-recorded events stay readable.
func (t *Tracer) SetEnabled(on bool) {
	if t != nil {
		t.enabled.Store(on)
	}
}

// Now returns the tracer's wall-clock timestamp: microseconds since the
// tracer was constructed.
func (t *Tracer) Now() int64 {
	if t == nil {
		return 0
	}
	return time.Since(t.epoch).Microseconds()
}

// NextID allocates a fresh span/track ID.
func (t *Tracer) NextID() uint64 {
	if t == nil {
		return 0
	}
	return t.seq.Add(1)
}

// NameTrack labels a (pid, track) lane for trace viewers ("LAP",
// "req-000003"). Exported as thread_name metadata.
func (t *Tracer) NameTrack(pid int, track uint64, name string) {
	if !t.Enabled() {
		return
	}
	t.mu.Lock()
	t.tracks[trackKey{pid, track}] = name
	t.mu.Unlock()
}

// Emit records one event, overwriting the oldest when the ring is full.
// ev.Seq is assigned here; callers fill the rest.
func (t *Tracer) Emit(ev Event) {
	if !t.Enabled() {
		return
	}
	t.mu.Lock()
	ev.Seq = t.seq.Add(1)
	if t.n == len(t.buf) {
		t.dropped++
	} else {
		t.n++
	}
	t.buf[t.next] = ev
	t.next = (t.next + 1) % len(t.buf)
	t.mu.Unlock()
}

// Events returns the resident events, oldest first (ascending Seq).
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Event, 0, t.n)
	start := t.next - t.n
	if start < 0 {
		start += len(t.buf)
	}
	for i := 0; i < t.n; i++ {
		out = append(out, t.buf[(start+i)%len(t.buf)])
	}
	return out
}

// Len reports the resident event count; Dropped the events evicted by
// the ring bound.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.n
}

// Dropped reports how many events the ring bound evicted.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// Span is one in-flight wall-clock operation. Spans are created by Root
// and Start, carried in a context.Context, and recorded on End. A nil
// Span is valid: every method no-ops, which is how un-traced paths stay
// free.
type Span struct {
	t      *Tracer
	name   string
	id     uint64
	parent uint64
	track  uint64
	start  int64
	attrs  []Attr
}

type ctxKey struct{}

// WithSpan returns ctx carrying s as the current span.
func WithSpan(ctx context.Context, s *Span) context.Context {
	if s == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, s)
}

// FromContext returns ctx's current span, or nil.
func FromContext(ctx context.Context) *Span {
	s, _ := ctx.Value(ctxKey{}).(*Span)
	return s
}

// Root opens a top-level span on its own viewer track and returns a ctx
// carrying it. Returns (ctx, nil) when the tracer is nil or disabled.
func (t *Tracer) Root(ctx context.Context, name string, attrs ...Attr) (context.Context, *Span) {
	if !t.Enabled() {
		return ctx, nil
	}
	id := t.NextID()
	s := &Span{t: t, name: name, id: id, track: id, start: t.Now(), attrs: attrs}
	return WithSpan(ctx, s), s
}

// Start opens a child of ctx's current span, inheriting its track.
// Returns (ctx, nil) — zero further cost — when ctx carries no span.
func Start(ctx context.Context, name string, attrs ...Attr) (context.Context, *Span) {
	parent := FromContext(ctx)
	if parent == nil || !parent.t.Enabled() {
		return ctx, nil
	}
	s := &Span{
		t: parent.t, name: name, id: parent.t.NextID(),
		parent: parent.id, track: parent.track,
		start: parent.t.Now(), attrs: attrs,
	}
	return WithSpan(ctx, s), s
}

// SetAttr appends attributes to the span (call before End).
func (s *Span) SetAttr(attrs ...Attr) {
	if s == nil {
		return
	}
	s.attrs = append(s.attrs, attrs...)
}

// ID returns the span's ID (0 for a nil span) — correlate log records
// with trace spans through it.
func (s *Span) ID() uint64 {
	if s == nil {
		return 0
	}
	return s.id
}

// End records the span as a complete event. Safe to call on a nil span;
// calling twice records twice (don't).
func (s *Span) End() {
	if s == nil {
		return
	}
	s.t.Emit(Event{
		Phase: PhaseSpan, Name: s.name, Pid: PidWall,
		Track: s.track, TS: s.start, Dur: s.t.Now() - s.start,
		ID: s.id, Parent: s.parent, Attrs: s.attrs,
	})
}
