package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
)

// chromeEvent is one trace-event object in the Chrome/Perfetto JSON
// format: ph "X" for complete spans (ts+dur), "C" for counter samples,
// "M" for metadata. Span/parent IDs and user attributes travel in args.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	TS   int64          `json:"ts"`
	Dur  *int64         `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  uint64         `json:"tid"`
	ID   string         `json:"id,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// WriteChromeTrace renders the resident events as a Chrome trace-event
// JSON object ({"traceEvents": [...]}), loadable in Perfetto and
// chrome://tracing. Metadata events naming the processes (wall-clock vs
// simulated-cycles) and any named tracks come first, then the events in
// emission order.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	events := t.Events()
	out := make([]chromeEvent, 0, len(events)+8)
	out = append(out, metaEvent("process_name", PidWall, 0, "wall-clock"))
	out = append(out, metaEvent("process_name", PidSim, 0, "simulated-cycles"))
	out = append(out, trackMeta(t)...)
	for _, ev := range events {
		ce := chromeEvent{
			Name: ev.Name, Ph: string(ev.Phase), TS: ev.TS,
			Pid: ev.Pid, Tid: ev.Track,
		}
		switch ev.Phase {
		case PhaseSpan:
			dur := ev.Dur
			ce.Dur = &dur
			ce.Args = attrMap(ev.Attrs)
			if ce.Args == nil {
				ce.Args = map[string]any{}
			}
			ce.Args["span_id"] = ev.ID
			if ev.Parent != 0 {
				ce.Args["parent_id"] = ev.Parent
			}
		case PhaseCounter:
			// Distinct id per track so viewers draw one counter lane per
			// run rather than merging policies into one.
			ce.ID = fmt.Sprintf("%d", ev.Track)
			ce.Args = attrMap(ev.Attrs)
		default:
			ce.Args = attrMap(ev.Attrs)
		}
		out = append(out, ce)
	}
	doc := struct {
		TraceEvents []chromeEvent `json:"traceEvents"`
		Unit        string        `json:"displayTimeUnit"`
	}{TraceEvents: out, Unit: "ms"}
	enc := json.NewEncoder(w)
	return enc.Encode(doc)
}

// metaEvent builds a Chrome metadata record ("process_name",
// "thread_name").
func metaEvent(kind string, pid int, tid uint64, name string) chromeEvent {
	return chromeEvent{
		Name: kind, Ph: "M", Pid: pid, Tid: tid,
		Args: map[string]any{"name": name},
	}
}

// trackMeta renders the tracer's named tracks as thread_name metadata,
// in deterministic order.
func trackMeta(t *Tracer) []chromeEvent {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	keys := make([]trackKey, 0, len(t.tracks))
	for k := range t.tracks {
		keys = append(keys, k)
	}
	names := make(map[trackKey]string, len(t.tracks))
	for k, v := range t.tracks {
		names[k] = v
	}
	t.mu.Unlock()
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].pid != keys[j].pid {
			return keys[i].pid < keys[j].pid
		}
		return keys[i].track < keys[j].track
	})
	out := make([]chromeEvent, 0, len(keys))
	for _, k := range keys {
		out = append(out, metaEvent("thread_name", k.pid, k.track, names[k]))
	}
	return out
}

// jsonlEvent is the compact JSONL record: one object per line, native
// span/parent IDs, attrs as a flat object.
type jsonlEvent struct {
	Seq    uint64         `json:"seq"`
	Ph     string         `json:"ph"`
	Name   string         `json:"name"`
	Pid    int            `json:"pid"`
	Track  uint64         `json:"track"`
	TS     int64          `json:"ts"`
	Dur    int64          `json:"dur,omitempty"`
	ID     uint64         `json:"id,omitempty"`
	Parent uint64         `json:"parent,omitempty"`
	Attrs  map[string]any `json:"attrs,omitempty"`
}

// WriteJSONL renders the resident events as one compact JSON object per
// line, in emission order — the streaming-friendly export for log
// pipelines.
func (t *Tracer) WriteJSONL(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, ev := range t.Events() {
		rec := jsonlEvent{
			Seq: ev.Seq, Ph: string(ev.Phase), Name: ev.Name,
			Pid: ev.Pid, Track: ev.Track, TS: ev.TS, Dur: ev.Dur,
			ID: ev.ID, Parent: ev.Parent, Attrs: attrMap(ev.Attrs),
		}
		if err := enc.Encode(rec); err != nil {
			return err
		}
	}
	return nil
}

// attrMap converts an attr list to a JSON object (encoding/json sorts
// map keys, so output is deterministic). Nil for no attrs.
func attrMap(attrs []Attr) map[string]any {
	if len(attrs) == 0 {
		return nil
	}
	m := make(map[string]any, len(attrs))
	for _, a := range attrs {
		m[a.Key] = a.Value
	}
	return m
}

// ChromeJSON renders WriteChromeTrace into memory — the per-request
// export lapserved stores for GET /v1/trace/{id}.
func (t *Tracer) ChromeJSON() []byte {
	var b strings.Builder
	if err := t.WriteChromeTrace(&b); err != nil {
		return nil
	}
	return []byte(b.String())
}
