// Package obs is a dependency-free metrics registry for the simulation
// stack: counters, gauges, and fixed-bucket histograms with an atomic
// hot path, exposed in the Prometheus text exposition format (v0.0.4).
//
// Design:
//
//   - Hot path: mutation (Counter.Add, Gauge.Set, Histogram.Observe) is
//     lock-free — plain atomic adds for integer counters and bucket
//     counts, a CAS loop for float accumulation — so instrumenting the
//     simulation path costs nanoseconds and never serialises workers.
//     The registry mutex guards only registration and scraping.
//   - Optionality: every mutation method is nil-safe (a nil *Counter
//     no-ops), and a nil *Registry hands out nil instruments, so a
//     package can accept an optional registry and instrument
//     unconditionally; un-wired binaries pay one nil check.
//   - No dependencies: the exposition writer speaks the Prometheus text
//     format directly (# HELP/# TYPE comments, label escaping,
//     cumulative histogram buckets with le="+Inf", _sum and _count), so
//     nothing outside the standard library is imported. Families are
//     emitted in sorted name order and series in sorted label order,
//     making scrapes deterministic and diffable.
//
// The registry is the standard instrument for the tree: lapserved mounts
// one on GET /metrics, lapexp embeds a snapshot in its -timings JSON,
// and lapsim dumps one with -metrics.
package obs

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one name="value" pair attached to a series at registration.
type Label struct {
	Name  string
	Value string
}

// L is shorthand for constructing a Label.
func L(name, value string) Label { return Label{Name: name, Value: value} }

// Counter is a monotonically increasing integer metric. All methods are
// nil-safe: a nil Counter silently discards updates, so optional
// instrumentation needs no branching at call sites.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value reads the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a settable float metric. Mutation is lock-free: Set is an
// atomic store of the float bits, Add a CAS loop over them.
type Gauge struct{ bits atomic.Uint64 }

// Set replaces the gauge's value.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add moves the gauge by d (negative to decrease).
func (g *Gauge) Add(d float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value reads the current value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a fixed-bucket distribution. Buckets are upper bounds
// (exclusive of +Inf, which is implicit); Observe finds the first bound
// >= v with a binary search and bumps that bucket atomically, so the
// hot path is a search plus three atomic operations.
type Histogram struct {
	upper   []float64       // sorted upper bounds, +Inf excluded
	counts  []atomic.Uint64 // len(upper)+1; last is the +Inf overflow
	count   atomic.Uint64
	sumBits atomic.Uint64
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.upper, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count reads the total number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum reads the sum of all observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// ExpBuckets returns n exponentially spaced upper bounds starting at
// start and multiplying by factor: ExpBuckets(0.001, 2, 4) is
// [0.001 0.002 0.004 0.008].
func ExpBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic("obs: ExpBuckets needs start > 0, factor > 1, n >= 1")
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = start
		start *= factor
	}
	return out
}

// RunLatencyBuckets is the tree's standard latency bucketing: 1ms to
// ~8s, doubling — wide enough for quick smoke runs and full-scale
// simulations alike.
var RunLatencyBuckets = ExpBuckets(0.001, 2, 14)

// metricKind discriminates family types in the exposition output.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindGauge:
		return "gauge"
	case kindHistogram:
		return "histogram"
	}
	return "counter"
}

// series is one registered label-set of a family. Exactly one of the
// value sources is set.
type series struct {
	labels  string // rendered {a="b",...} suffix, "" when unlabeled
	counter *Counter
	gauge   *Gauge
	hist    *Histogram
	cfn     func() uint64
	gfn     func() float64
}

// family is all series sharing one metric name.
type family struct {
	name   string
	help   string
	kind   metricKind
	series []*series
}

// Registry holds registered metrics and renders them. A nil Registry is
// valid: registration returns nil instruments and WriteTo writes
// nothing, so callers can thread an optional registry without guards.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: map[string]*family{}}
}

// register adds one series, enforcing family consistency (one type and
// help per name) and series uniqueness (one value source per
// name+labels). Violations are programming errors and panic.
func (r *Registry) register(name, help string, kind metricKind, s *series, labels []Label) {
	if name == "" || !validName(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	s.labels = renderLabels(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, kind: kind}
		r.families[name] = f
	} else if f.kind != kind {
		panic(fmt.Sprintf("obs: metric %q re-registered as %s (was %s)", name, kind, f.kind))
	}
	for _, prev := range f.series {
		if prev.labels == s.labels {
			panic(fmt.Sprintf("obs: duplicate series %s%s", name, s.labels))
		}
	}
	f.series = append(f.series, s)
}

// Counter registers (and returns) a counter series.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	c := &Counter{}
	r.register(name, help, kindCounter, &series{counter: c}, labels)
	return c
}

// CounterFunc registers a counter series whose value is read from fn at
// scrape time — the bridge for subsystems that already keep their own
// atomic counters (internal/memo, internal/pool) and must stay free of
// registry plumbing on the hot path.
func (r *Registry) CounterFunc(name, help string, fn func() uint64, labels ...Label) {
	if r == nil {
		return
	}
	r.register(name, help, kindCounter, &series{cfn: fn}, labels)
}

// Gauge registers (and returns) a gauge series.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	g := &Gauge{}
	r.register(name, help, kindGauge, &series{gauge: g}, labels)
	return g
}

// GaugeFunc registers a gauge series sampled from fn at scrape time
// (queue occupancy, resident cache entries, breaker position).
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	if r == nil {
		return
	}
	r.register(name, help, kindGauge, &series{gfn: fn}, labels)
}

// Histogram registers (and returns) a histogram series over the given
// upper bounds (sorted ascending; +Inf implicit).
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	if len(buckets) == 0 {
		panic("obs: histogram needs at least one bucket")
	}
	if !sort.Float64sAreSorted(buckets) {
		panic("obs: histogram buckets must be sorted ascending")
	}
	h := &Histogram{
		upper:  append([]float64(nil), buckets...),
		counts: make([]atomic.Uint64, len(buckets)+1),
	}
	r.register(name, help, kindHistogram, &series{hist: h}, labels)
	return h
}

// WriteTo renders the registry in the Prometheus text exposition format
// v0.0.4: families sorted by name, each with # HELP and # TYPE comments
// followed by its series in sorted label order. Histograms emit
// cumulative _bucket series up to le="+Inf" plus _sum and _count.
func (r *Registry) WriteTo(w io.Writer) (int64, error) {
	if r == nil {
		return 0, nil
	}
	var b strings.Builder
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		f := r.families[name]
		fmt.Fprintf(&b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.kind)
		ordered := append([]*series(nil), f.series...)
		sort.Slice(ordered, func(i, j int) bool { return ordered[i].labels < ordered[j].labels })
		for _, s := range ordered {
			s.writeTo(&b, f.name)
		}
	}
	r.mu.Unlock()
	n, err := io.WriteString(w, b.String())
	return int64(n), err
}

// writeTo renders one series' sample lines.
func (s *series) writeTo(b *strings.Builder, name string) {
	switch {
	case s.counter != nil:
		fmt.Fprintf(b, "%s%s %s\n", name, s.labels, formatValue(float64(s.counter.Value())))
	case s.cfn != nil:
		fmt.Fprintf(b, "%s%s %s\n", name, s.labels, formatValue(float64(s.cfn())))
	case s.gauge != nil:
		fmt.Fprintf(b, "%s%s %s\n", name, s.labels, formatValue(s.gauge.Value()))
	case s.gfn != nil:
		fmt.Fprintf(b, "%s%s %s\n", name, s.labels, formatValue(s.gfn()))
	case s.hist != nil:
		var cum uint64
		for i, ub := range s.hist.upper {
			cum += s.hist.counts[i].Load()
			fmt.Fprintf(b, "%s_bucket%s %d\n", name, withLE(s.labels, formatValue(ub)), cum)
		}
		cum += s.hist.counts[len(s.hist.upper)].Load()
		fmt.Fprintf(b, "%s_bucket%s %d\n", name, withLE(s.labels, "+Inf"), cum)
		fmt.Fprintf(b, "%s_sum%s %s\n", name, s.labels, formatValue(s.hist.Sum()))
		fmt.Fprintf(b, "%s_count%s %d\n", name, s.labels, s.hist.Count())
	}
}

// Snapshot flattens the registry into "name{labels}" → value, the shape
// lapexp embeds in its -timings JSON. Histograms contribute their
// name_count and name_sum series.
func (r *Registry) Snapshot() map[string]float64 {
	if r == nil {
		return nil
	}
	out := map[string]float64{}
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, f := range r.families {
		for _, s := range f.series {
			key := f.name + s.labels
			switch {
			case s.counter != nil:
				out[key] = float64(s.counter.Value())
			case s.cfn != nil:
				out[key] = float64(s.cfn())
			case s.gauge != nil:
				out[key] = s.gauge.Value()
			case s.gfn != nil:
				out[key] = s.gfn()
			case s.hist != nil:
				out[f.name+"_count"+s.labels] = float64(s.hist.Count())
				out[f.name+"_sum"+s.labels] = s.hist.Sum()
			}
		}
	}
	return out
}

// Handler serves the exposition over HTTP with the v0.0.4 content type.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WriteTo(w)
	})
}

// withLE merges the le bucket label into a rendered label suffix.
func withLE(labels, le string) string {
	pair := `le="` + le + `"`
	if labels == "" {
		return "{" + pair + "}"
	}
	return labels[:len(labels)-1] + "," + pair + "}"
}

// renderLabels produces the canonical {a="b",c="d"} suffix, names
// sorted, values escaped.
func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ordered := append([]Label(nil), labels...)
	sort.Slice(ordered, func(i, j int) bool { return ordered[i].Name < ordered[j].Name })
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range ordered {
		if !validLabelName(l.Name) {
			panic(fmt.Sprintf("obs: invalid label name %q", l.Name))
		}
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Name)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// validName enforces the Prometheus metric name charset
// [a-zA-Z_:][a-zA-Z0-9_:]*. Colons are legal ONLY in metric names (the
// spec reserves them for recording rules); label names use
// validLabelName, which rejects them.
func validName(s string) bool {
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == ':':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return s != ""
}

// validLabelName enforces the Prometheus label name charset
// [a-zA-Z_][a-zA-Z0-9_]*: like metric names but with no colons. A label
// name like "source:kind" would render an exposition line strict
// parsers (and Prometheus itself) reject, so it must panic at
// registration, not at scrape.
func validLabelName(s string) bool {
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return s != ""
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	return strings.ReplaceAll(s, `"`, `\"`)
}

// escapeHelp escapes a help string per the exposition format.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// formatValue renders a sample value the way Prometheus expects:
// shortest round-trip representation, integers without an exponent.
func formatValue(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
