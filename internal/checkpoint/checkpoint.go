// Package checkpoint implements the durable, digest-keyed, crash-safe
// on-disk store behind resumable simulations and persistent sampling
// profiles.
//
// Every entry is one file:
//
//	magic "LAPCKPT1" (8 bytes)
//	format version   (uvarint)
//	kind             (length-prefixed string: "run" or "profile")
//	config digest    (length-prefixed string)
//	workload digest  (length-prefixed string)
//	interval index   (uvarint)
//	accesses         (uvarint)
//	payload          (length-prefixed bytes, opaque to the store)
//	CRC-32 (IEEE)    (4 bytes LE, over everything above)
//
// Files are written to a temp file in the store directory, fsynced,
// and atomically renamed into place, so a crash mid-write can never
// publish a torn entry. Readers validate magic and CRC before parsing
// anything else, so any bit flip or truncation surfaces as the typed
// *ErrCorrupt — *ErrVersionMismatch is reserved for intact files
// written by a different format version. Corrupt files are quarantined
// (renamed to *.bad) rather than trusted or deleted, and every
// durability failure degrades to cold start: the store reports errors
// and counts them in Metrics, but callers never fail a run because a
// checkpoint did.
package checkpoint

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"

	"repro/internal/checkpoint/wire"
	"repro/internal/fault"
)

// FormatVersion is the on-disk format this build reads and writes.
const FormatVersion = 1

const (
	magic   = "LAPCKPT1"
	fileExt = ".ckpt"
	badExt  = ".bad"
)

// Entry kinds. The store treats kinds opaquely; these are the two the
// simulator uses.
const (
	KindRun     = "run"
	KindProfile = "profile"
)

// ErrCorrupt reports a checkpoint file that failed validation: bad
// magic, CRC mismatch, truncation, or a malformed field. The file has
// been quarantined when Path is non-empty.
type ErrCorrupt struct {
	Path   string
	Reason string
	Err    error
}

func (e *ErrCorrupt) Error() string {
	if e.Err != nil {
		return fmt.Sprintf("checkpoint: corrupt %s: %s: %v", e.Path, e.Reason, e.Err)
	}
	return fmt.Sprintf("checkpoint: corrupt %s: %s", e.Path, e.Reason)
}

func (e *ErrCorrupt) Unwrap() error { return e.Err }

// ErrVersionMismatch reports an intact (CRC-valid) file written by a
// different format version. It degrades to cold start like corruption,
// but is counted separately: it means a version skew, not bit rot.
type ErrVersionMismatch struct {
	Path string
	Got  uint64
}

func (e *ErrVersionMismatch) Error() string {
	return fmt.Sprintf("checkpoint: %s is format v%d, this build reads v%d", e.Path, e.Got, FormatVersion)
}

// ErrNotFound reports that no valid entry exists for a key.
var ErrNotFound = errors.New("checkpoint: no valid entry")

// Key identifies a checkpoint stream: what kind of artifact, under
// which machine configuration, for which workload. Digest the inputs
// with DigestConfig/Digest; keys become filenames, so the store
// requires digest-safe (hex) strings.
type Key struct {
	Kind     string
	Config   string
	Workload string
}

func (k Key) String() string { return k.Kind + "/" + k.Config + "/" + k.Workload }

// Entry is one stored snapshot: the interval ordinal it was taken at,
// the access count executed by then, and the opaque payload.
type Entry struct {
	Interval uint64
	Accesses uint64
	Payload  []byte
}

// Observer receives checkpoint lifecycle notifications. op is one of
// "write", "write_error", "restore", "restore_failed", "corrupt",
// "version_mismatch"; key is the entry's Key.String() where known ("",
// e.g., for restore notes recorded after the store handed the payload
// out). Observers run on the calling goroutine and must not block.
type Observer func(op, key, detail string, err error)

// Store is a directory of checkpoint files. All methods are safe for
// concurrent use (atomic renames give per-file atomicity; the metrics
// are atomic counters).
type Store struct {
	dir string
	met Metrics
	obs atomic.Pointer[Observer]
}

// SetObserver installs (or, with nil, removes) the store's lifecycle
// observer. Safe to call concurrently with store use.
func (s *Store) SetObserver(fn Observer) {
	if fn == nil {
		s.obs.Store(nil)
		return
	}
	s.obs.Store(&fn)
}

func (s *Store) notify(op, key, detail string, err error) {
	if fn := s.obs.Load(); fn != nil {
		(*fn)(op, key, detail, err)
	}
}

// Open creates (if needed) and returns the store rooted at dir.
func Open(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("checkpoint: opening store: %w", err)
	}
	return &Store{dir: dir}, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// digestSafe guards against keys that would escape the store
// directory; digests are always lowercase hex, so anything else is a
// caller bug.
func digestSafe(s string) bool {
	if s == "" {
		return false
	}
	for _, r := range s {
		ok := r >= 'a' && r <= 'z' || r >= '0' && r <= '9' || r == '-' || r == '_'
		if !ok {
			return false
		}
	}
	return true
}

// fileName is "<kind>-<config>-<workload>-<interval>.ckpt".
func (s *Store) fileName(k Key, interval uint64) string {
	return filepath.Join(s.dir, fmt.Sprintf("%s-%s-%s-%016d%s", k.Kind, k.Config, k.Workload, interval, fileExt))
}

// encodeFile serializes one entry into the on-disk format.
func encodeFile(k Key, e Entry) []byte {
	var enc wire.Encoder
	enc.Str(k.Kind)
	enc.Str(k.Config)
	enc.Str(k.Workload)
	enc.U64(e.Interval)
	enc.U64(e.Accesses)
	enc.Raw(e.Payload)
	body := enc.Bytes()

	out := make([]byte, 0, len(magic)+2+len(body)+4)
	out = append(out, magic...)
	out = binary.AppendUvarint(out, FormatVersion)
	out = append(out, body...)
	out = binary.LittleEndian.AppendUint32(out, crc32.ChecksumIEEE(out))
	return out
}

// decodeFile parses and validates one checkpoint file image. Every
// failure is typed: *ErrCorrupt for anything the CRC or parser rejects,
// *ErrVersionMismatch for intact files of another format version. path
// is used only for error context.
func decodeFile(path string, data []byte) (Key, Entry, error) {
	corrupt := func(reason string, err error) (Key, Entry, error) {
		return Key{}, Entry{}, &ErrCorrupt{Path: path, Reason: reason, Err: err}
	}
	if len(data) < len(magic)+1+4 {
		return corrupt(fmt.Sprintf("file too short (%d bytes)", len(data)), nil)
	}
	if string(data[:len(magic)]) != magic {
		return corrupt("bad magic", nil)
	}
	// CRC first: it covers the version bytes too, so a bit flip anywhere
	// is always ErrCorrupt; ErrVersionMismatch means a genuinely
	// different (intact) format.
	body, sum := data[:len(data)-4], binary.LittleEndian.Uint32(data[len(data)-4:])
	if got := crc32.ChecksumIEEE(body); got != sum {
		return corrupt(fmt.Sprintf("CRC mismatch (file %08x, computed %08x)", sum, got), nil)
	}
	ver, n := binary.Uvarint(body[len(magic):])
	if n <= 0 {
		return corrupt("truncated version", nil)
	}
	if ver != FormatVersion {
		return Key{}, Entry{}, &ErrVersionMismatch{Path: path, Got: ver}
	}
	d := wire.NewDecoder(body[len(magic)+n:])
	k := Key{Kind: d.Str(), Config: d.Str(), Workload: d.Str()}
	e := Entry{Interval: d.U64(), Accesses: d.U64(), Payload: d.Raw()}
	if err := d.Err(); err != nil {
		return corrupt("malformed header", err)
	}
	if len(d.Rest()) != 0 {
		return corrupt(fmt.Sprintf("%d trailing bytes", len(d.Rest())), nil)
	}
	return k, e, nil
}

// Put durably stores one entry: temp file in the store directory,
// fsync, atomic rename. Older intervals of the same key are then
// pruned best-effort (the rename already published the newer one, so a
// crash between the two steps costs only disk space). Failures are
// counted and returned; callers are expected to log-and-continue.
func (s *Store) Put(k Key, e Entry) error {
	err := s.put(k, e)
	if err != nil {
		s.met.writeErrors.Add(1)
		s.notify("write_error", k.String(), "", err)
	} else {
		s.notify("write", k.String(), fmt.Sprintf("interval=%d", e.Interval), nil)
	}
	return err
}

func (s *Store) put(k Key, e Entry) error {
	if !digestSafe(k.Kind) || !digestSafe(k.Config) || !digestSafe(k.Workload) {
		return fmt.Errorf("checkpoint: key %q is not digest-safe", k)
	}
	if err := fault.Inject(fault.PointCheckpointWrite, k.String()); err != nil {
		return err
	}
	data := encodeFile(k, e)
	f, err := os.CreateTemp(s.dir, "put-*.tmp")
	if err != nil {
		return fmt.Errorf("checkpoint: creating temp file: %w", err)
	}
	tmp := f.Name()
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("checkpoint: writing %s: %w", tmp, err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("checkpoint: syncing %s: %w", tmp, err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("checkpoint: closing %s: %w", tmp, err)
	}
	dst := s.fileName(k, e.Interval)
	if err := os.Rename(tmp, dst); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("checkpoint: publishing %s: %w", dst, err)
	}
	s.met.writes.Add(1)
	s.met.bytesWritten.Add(uint64(len(data)))
	// Prune superseded intervals; best-effort by design.
	for _, ent := range s.entriesFor(k) {
		if ent.interval < e.Interval {
			os.Remove(ent.path)
		}
	}
	return nil
}

type diskEntry struct {
	path     string
	interval uint64
}

// entriesFor lists the on-disk intervals for a key, newest first.
func (s *Store) entriesFor(k Key) []diskEntry {
	prefix := fmt.Sprintf("%s-%s-%s-", k.Kind, k.Config, k.Workload)
	names, err := os.ReadDir(s.dir)
	if err != nil {
		return nil
	}
	var out []diskEntry
	for _, de := range names {
		name := de.Name()
		if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, fileExt) {
			continue
		}
		numeric := strings.TrimSuffix(strings.TrimPrefix(name, prefix), fileExt)
		iv, err := strconv.ParseUint(numeric, 10, 64)
		if err != nil {
			continue
		}
		out = append(out, diskEntry{path: filepath.Join(s.dir, name), interval: iv})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].interval > out[j].interval })
	return out
}

// quarantine renames a rejected file to *.bad so it is never trusted
// again but remains available for postmortem.
func (s *Store) quarantine(path string) {
	os.Rename(path, path+badExt)
}

// read loads and validates one file, quarantining and counting it on
// failure.
func (s *Store) read(k Key, path string) (Entry, error) {
	if err := fault.Inject(fault.PointCheckpointRead, k.String()); err != nil {
		s.met.corrupt.Add(1)
		s.notify("corrupt", k.String(), path, err)
		s.quarantine(path)
		return Entry{}, &ErrCorrupt{Path: path, Reason: "injected read fault", Err: err}
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return Entry{}, fmt.Errorf("checkpoint: reading %s: %w", path, err)
	}
	gotKey, e, err := decodeFile(path, data)
	if err != nil {
		var vm *ErrVersionMismatch
		if errors.As(err, &vm) {
			s.met.versionMismatch.Add(1)
			s.notify("version_mismatch", k.String(), path, err)
		} else {
			s.met.corrupt.Add(1)
			s.notify("corrupt", k.String(), path, err)
		}
		s.quarantine(path)
		return Entry{}, err
	}
	if gotKey != k {
		// The filename promised one key, the content another: stale or
		// tampered. Quarantine like any other corruption.
		s.met.corrupt.Add(1)
		s.notify("corrupt", k.String(), path, nil)
		s.quarantine(path)
		return Entry{}, &ErrCorrupt{Path: path, Reason: fmt.Sprintf("key mismatch (file says %q, expected %q)", gotKey, k)}
	}
	s.met.bytesRead.Add(uint64(len(data)))
	return e, nil
}

// Get loads the entry at one specific interval.
func (s *Store) Get(k Key, interval uint64) (Entry, error) {
	path := s.fileName(k, interval)
	if _, err := os.Stat(path); err != nil {
		return Entry{}, ErrNotFound
	}
	return s.read(k, path)
}

// Latest returns the newest valid entry for a key, walking backwards
// past (and quarantining) corrupt or mismatched files. ErrNotFound
// means a clean cold start; any entry returned passed CRC validation.
func (s *Store) Latest(k Key) (Entry, error) {
	for _, de := range s.entriesFor(k) {
		e, err := s.read(k, de.path)
		if err == nil {
			return e, nil
		}
	}
	return Entry{}, ErrNotFound
}

// NoteRestored records a successful resume that skipped intervalsSaved
// checkpoint intervals of simulation work.
func (s *Store) NoteRestored(intervalsSaved uint64) {
	s.met.restores.Add(1)
	s.met.intervalsSaved.Add(intervalsSaved)
	s.notify("restore", "", fmt.Sprintf("intervals_saved=%d", intervalsSaved), nil)
}

// NoteRestoreFailed records a payload that passed CRC but could not be
// applied to a machine (shape or version drift inside the payload).
func (s *Store) NoteRestoreFailed() {
	s.met.corrupt.Add(1)
	s.notify("restore_failed", "", "", nil)
}

// Drop removes every on-disk interval for a key (used after a payload
// proves unusable, so the next run does not retry it).
func (s *Store) Drop(k Key) {
	for _, de := range s.entriesFor(k) {
		s.quarantine(de.path)
	}
}

// Digest hashes a list of descriptor strings into a filename-safe hex
// key component.
func Digest(parts ...string) string {
	h := sha256.New()
	for _, p := range parts {
		h.Write([]byte(p))
		h.Write([]byte{0})
	}
	return hex.EncodeToString(h.Sum(nil))[:16]
}

// DigestJSON hashes the JSON encoding of a value (typically an
// already-normalized configuration struct) into a key component.
func DigestJSON(v any) string {
	data, err := json.Marshal(v)
	if err != nil {
		// Configs are plain value structs; Marshal cannot fail on them.
		panic(fmt.Sprintf("checkpoint: encoding digest: %v", err))
	}
	return Digest(string(data))
}
