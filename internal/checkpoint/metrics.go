package checkpoint

import (
	"sync/atomic"

	"repro/internal/obs"
)

// Metrics are the store's atomic durability counters. They exist even
// when no registry is attached (tests read them directly); Register
// exports them as Prometheus-style series.
type Metrics struct {
	writes          atomic.Uint64
	writeErrors     atomic.Uint64
	restores        atomic.Uint64
	corrupt         atomic.Uint64
	versionMismatch atomic.Uint64
	bytesWritten    atomic.Uint64
	bytesRead       atomic.Uint64
	intervalsSaved  atomic.Uint64
}

// Metrics returns the store's counters.
func (s *Store) Metrics() *Metrics { return &s.met }

// Writes is the number of checkpoint files durably published.
func (m *Metrics) Writes() uint64 { return m.writes.Load() }

// WriteErrors counts failed durability writes (the runs continued).
func (m *Metrics) WriteErrors() uint64 { return m.writeErrors.Load() }

// Restores counts successful resumes from a stored checkpoint.
func (m *Metrics) Restores() uint64 { return m.restores.Load() }

// Corrupt counts entries rejected as corrupt and quarantined.
func (m *Metrics) Corrupt() uint64 { return m.corrupt.Load() }

// VersionMismatches counts intact entries from other format versions.
func (m *Metrics) VersionMismatches() uint64 { return m.versionMismatch.Load() }

// BytesWritten is the total bytes durably written.
func (m *Metrics) BytesWritten() uint64 { return m.bytesWritten.Load() }

// BytesRead is the total bytes read back from valid entries.
func (m *Metrics) BytesRead() uint64 { return m.bytesRead.Load() }

// IntervalsSaved is the total checkpoint intervals of simulation work
// that resumes skipped.
func (m *Metrics) IntervalsSaved() uint64 { return m.intervalsSaved.Load() }

// Register exports the store's counters on reg under ns (series
// "<ns>_checkpoint_*").
func (s *Store) Register(reg *obs.Registry, ns string) {
	m := &s.met
	counter := func(name, help string, f func() uint64) {
		reg.CounterFunc(ns+"_checkpoint_"+name, help, f)
	}
	counter("writes_total", "Checkpoint files durably published.", m.Writes)
	counter("write_errors_total", "Checkpoint writes that failed (runs continued).", m.WriteErrors)
	counter("restores_total", "Runs successfully resumed from a checkpoint.", m.Restores)
	counter("corrupt_total", "Checkpoint entries rejected as corrupt and quarantined.", m.Corrupt)
	counter("version_mismatch_total", "Intact checkpoint entries from another format version.", m.VersionMismatches)
	counter("bytes_written_total", "Bytes durably written to the checkpoint store.", m.BytesWritten)
	counter("bytes_read_total", "Bytes read back from valid checkpoint entries.", m.BytesRead)
	counter("resume_intervals_saved_total", "Checkpoint intervals of simulation work skipped by resumes.", m.IntervalsSaved)
}
