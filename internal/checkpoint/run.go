package checkpoint

// Run-side orchestration: the resume-from-latest-valid-checkpoint flow
// shared by lap, internal/experiments, and lapserved. The store holds
// opaque payloads; this file knows how to key them (normalized config
// digest × workload digest), apply them to a machine, and — the
// robustness contract — degrade every durability failure to a cold
// start. A missing store, a corrupt entry, an injected fault, or an
// unusable payload never fails the run; it only costs the fast-forward.

import (
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/sim"
	"repro/internal/trace"
)

// DigestSimConfig hashes a simulator configuration for checkpoint
// keying, normalizing the host-execution knobs that do not affect
// results (Banks, CheckpointEvery — the same fields the memo layers
// exclude), so a run checkpointed at one worker-bank count resumes at
// any other.
func DigestSimConfig(cfg sim.Config) string {
	cfg.Banks = 0
	cfg.CheckpointEvery = 0
	return DigestJSON(cfg)
}

// RunKey builds the store key for one exact run: the normalized config
// digest crossed with a workload descriptor that must pin everything
// else the simulation depends on — mix members, accesses, seed, and
// policy (controller state lives inside the payload).
func RunKey(cfg sim.Config, workload, policy string) Key {
	return Key{
		Kind:     KindRun,
		Config:   DigestSimConfig(cfg),
		Workload: Digest(workload, "policy="+policy),
	}
}

// ResumableRun executes one exact simulation with durable checkpoints:
// it restores the latest valid checkpoint for the key (if any), fast-
// forwards, and keeps snapshotting every cfg.CheckpointEvery accesses.
// mkCtrl and mkSrcs are factories because a failed restore taints the
// controller and sources it was attempted on: the cold retry rebuilds
// both. With a nil store the run simply executes cold, unchecked.
//
// The result is byte-identical to an uninterrupted run on the same
// inputs, whichever path was taken.
func ResumableRun(st *Store, cfg sim.Config, workload, policy string, mkCtrl func() core.Controller, mkSrcs func() ([]trace.Source, error)) (sim.Result, error) {
	run := func(resume []byte, sink sim.CheckpointSink) (sim.Result, error) {
		srcs, err := mkSrcs()
		if err != nil {
			return sim.Result{}, err
		}
		return sim.RunCheckpointed(cfg, mkCtrl(), srcs, resume, sink)
	}
	if st == nil || cfg.CheckpointEvery == 0 {
		return run(nil, nil)
	}

	key := RunKey(cfg, workload, policy)
	sink := func(interval, accesses uint64, payload []byte) {
		// Durability failures are counted in the store's metrics and
		// otherwise ignored: the run must not care.
		_ = st.Put(key, Entry{Interval: interval, Accesses: accesses, Payload: payload})
	}

	if ent, err := st.Latest(key); err == nil {
		if ferr := fault.Inject(fault.PointCheckpointRestore, key.String()); ferr != nil {
			st.NoteRestoreFailed()
		} else if res, rerr := run(ent.Payload, sink); rerr == nil {
			st.NoteRestored(ent.Interval)
			return res, nil
		} else {
			// CRC-valid but unusable (payload version or shape drift).
			// Count it, quarantine the stream so the next run does not
			// retry it, and fall through to a cold start.
			st.NoteRestoreFailed()
			st.Drop(key)
		}
	}
	return run(nil, sink)
}

// ErrProfileNotForkable reports sources that cannot back a restored
// profile (they must support fork-and-skip replay).
var ErrProfileNotForkable = errors.New("checkpoint: profile sources are not forkable")

// Profile persistence is expressed through function values so this
// package does not import internal/sample (sample imports sim; keeping
// the store below both leaves the profile codec with its owner).
type (
	// ProfileBuilder runs the functional profiling pass from scratch.
	ProfileBuilder[P any] func() (P, error)
	// ProfileCodec encodes a profile to bytes / decodes one from bytes.
	ProfileCodec[P any] struct {
		Encode func(P) []byte
		Decode func([]byte) (P, error)
	}
)

// ProfileKey builds the store key for one sampling profile. Profiles
// are policy-independent, and the cluster/warmup knobs shape the replay
// rather than the profile, so they are normalized out of the digest
// (mirroring the in-process profile memo); the workload descriptor must
// pin the trace and per-core length.
func ProfileKey(cfg sim.Config, workload string) Key {
	cfg.SampleClusters = 0
	cfg.SampleWarmup = 0
	return Key{
		Kind:     KindProfile,
		Config:   DigestSimConfig(cfg),
		Workload: Digest(workload),
	}
}

// LoadOrBuildProfile returns the profile for key, loading it from the
// store when a digest-matching entry exists and building + persisting
// it otherwise. built reports which path ran (false = cache hit, the
// functional pass was skipped). Durability failures degrade to a fresh
// build, never an error; err is only a build failure.
func LoadOrBuildProfile[P any](st *Store, key Key, intervals func(P) uint64, codec ProfileCodec[P], build ProfileBuilder[P]) (p P, built bool, err error) {
	if st != nil {
		if ent, lerr := st.Latest(key); lerr == nil {
			if ferr := fault.Inject(fault.PointCheckpointRestore, key.String()); ferr != nil {
				st.NoteRestoreFailed()
			} else if prof, derr := codec.Decode(ent.Payload); derr == nil {
				st.NoteRestored(intervals(prof))
				return prof, false, nil
			} else {
				st.NoteRestoreFailed()
				st.Drop(key)
			}
		}
	}
	p, err = build()
	if err != nil {
		return p, false, err
	}
	if st != nil {
		payload := codec.Encode(p)
		_ = st.Put(key, Entry{Interval: intervals(p), Accesses: 0, Payload: payload})
	}
	return p, true, nil
}

// String-building helper shared by the callers that label workloads.
// Mixes are described as "mix:NAME[members]|cores=N|acc=N|seed=N".
func MixWorkload(name string, members []string, cores int, accesses, seed uint64) string {
	desc := name + "["
	for i, m := range members {
		if i > 0 {
			desc += ","
		}
		desc += m
	}
	return fmt.Sprintf("mix:%s]|cores=%d|acc=%d|seed=%d", desc, cores, accesses, seed)
}
