package checkpoint

import (
	"encoding/binary"
	"errors"
	"hash/crc32"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/checkpoint/wire"
	"repro/internal/fault"
)

func testKey() Key {
	return Key{Kind: KindRun, Config: Digest("cfg"), Workload: Digest("wl")}
}

// encodeWithVersion builds a CRC-valid file image claiming an arbitrary
// format version — the shape a future build would leave behind.
func encodeWithVersion(ver uint64, k Key, e Entry) []byte {
	var enc wire.Encoder
	enc.Str(k.Kind)
	enc.Str(k.Config)
	enc.Str(k.Workload)
	enc.U64(e.Interval)
	enc.U64(e.Accesses)
	enc.Raw(e.Payload)
	out := append([]byte(nil), magic...)
	out = binary.AppendUvarint(out, ver)
	out = append(out, enc.Bytes()...)
	return binary.LittleEndian.AppendUint32(out, crc32.ChecksumIEEE(out))
}

func TestStoreRoundTrip(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	k := testKey()
	if _, err := st.Latest(k); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Latest on empty store: %v, want ErrNotFound", err)
	}
	ent := Entry{Interval: 3, Accesses: 30_000, Payload: []byte("machine-state")}
	if err := st.Put(k, ent); err != nil {
		t.Fatal(err)
	}
	got, err := st.Latest(k)
	if err != nil {
		t.Fatal(err)
	}
	if got.Interval != ent.Interval || got.Accesses != ent.Accesses || string(got.Payload) != string(ent.Payload) {
		t.Fatalf("round trip mismatch: %+v != %+v", got, ent)
	}
	if _, err := st.Get(k, 3); err != nil {
		t.Fatalf("Get exact interval: %v", err)
	}
	if _, err := st.Get(k, 4); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get missing interval: %v, want ErrNotFound", err)
	}
	if m := st.Metrics(); m.Writes() != 1 || m.BytesWritten() == 0 {
		t.Fatalf("metrics after one write: writes=%d bytes=%d", m.Writes(), m.BytesWritten())
	}
}

// TestStorePrunesOlderIntervals checks that Put keeps only the newest
// interval per key: older files are removed, other keys untouched.
func TestStorePrunesOlderIntervals(t *testing.T) {
	dir := t.TempDir()
	st, _ := Open(dir)
	k := testKey()
	other := Key{Kind: KindProfile, Config: k.Config, Workload: k.Workload}
	if err := st.Put(other, Entry{Interval: 1, Payload: []byte("p")}); err != nil {
		t.Fatal(err)
	}
	for iv := uint64(1); iv <= 4; iv++ {
		if err := st.Put(k, Entry{Interval: iv, Accesses: iv * 10, Payload: []byte("x")}); err != nil {
			t.Fatal(err)
		}
	}
	files, _ := filepath.Glob(filepath.Join(dir, "*"+fileExt))
	if len(files) != 2 { // one per key
		t.Fatalf("expected 2 files after pruning, got %v", files)
	}
	ent, err := st.Latest(k)
	if err != nil || ent.Interval != 4 {
		t.Fatalf("Latest after pruning: %+v, %v", ent, err)
	}
	if _, err := st.Latest(other); err != nil {
		t.Fatalf("pruning removed another key's entry: %v", err)
	}
}

// TestStoreQuarantinesCorruptEntries flips a byte in a stored file and
// checks the typed error, the metric, the .bad rename, and that Latest
// walks past the damage to an older valid entry.
func TestStoreQuarantinesCorruptEntries(t *testing.T) {
	dir := t.TempDir()
	st, _ := Open(dir)
	k := testKey()
	if err := st.Put(k, Entry{Interval: 2, Payload: []byte("new")}); err != nil {
		t.Fatal(err)
	}
	// Put only prunes strictly older intervals, so backfilling interval 1
	// leaves both on disk — the fallback target for the walk below.
	if err := st.Put(k, Entry{Interval: 1, Payload: []byte("old")}); err != nil {
		t.Fatal(err)
	}
	newest := st.fileName(k, 2)
	data, err := os.ReadFile(newest)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x40
	if err := os.WriteFile(newest, data, 0o644); err != nil {
		t.Fatal(err)
	}

	if _, err := st.Get(k, 2); !isCorrupt(err) {
		t.Fatalf("Get corrupt entry: %v, want *ErrCorrupt", err)
	}
	if st.Metrics().Corrupt() != 1 {
		t.Fatalf("corrupt metric = %d, want 1", st.Metrics().Corrupt())
	}
	if _, err := os.Stat(newest); !os.IsNotExist(err) {
		t.Fatal("corrupt file was not quarantined")
	}
	bad, _ := filepath.Glob(filepath.Join(dir, "*"+badExt))
	if len(bad) != 1 {
		t.Fatalf("expected one quarantined file, got %v", bad)
	}
	// Latest must now fall back to the surviving interval 1.
	ent, err := st.Latest(k)
	if err != nil || ent.Interval != 1 || string(ent.Payload) != "old" {
		t.Fatalf("Latest after quarantine: %+v, %v", ent, err)
	}
}

// TestStoreVersionMismatchIsTyped rewrites a valid file with a future
// format version (CRC intact) and checks the distinct typed error.
func TestStoreVersionMismatchIsTyped(t *testing.T) {
	dir := t.TempDir()
	st, _ := Open(dir)
	k := testKey()
	if err := st.Put(k, Entry{Interval: 1, Payload: []byte("v")}); err != nil {
		t.Fatal(err)
	}
	raw := encodeWithVersion(99, k, Entry{Interval: 1, Payload: []byte("v")})
	if err := os.WriteFile(st.fileName(k, 1), raw, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := st.Get(k, 1)
	var vm *ErrVersionMismatch
	if !errors.As(err, &vm) || vm.Got != 99 {
		t.Fatalf("Get future-version entry: %v, want *ErrVersionMismatch{Got:99}", err)
	}
	if st.Metrics().VersionMismatches() != 1 {
		t.Fatalf("version mismatch metric = %d, want 1", st.Metrics().VersionMismatches())
	}
	if _, err := st.Latest(k); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Latest after quarantining the only entry: %v, want ErrNotFound", err)
	}
}

// TestStoreKeyMismatchIsCorrupt copies a valid file onto another key's
// filename; the embedded-key echo must reject it as corrupt.
func TestStoreKeyMismatchIsCorrupt(t *testing.T) {
	dir := t.TempDir()
	st, _ := Open(dir)
	k := testKey()
	if err := st.Put(k, Entry{Interval: 1, Payload: []byte("v")}); err != nil {
		t.Fatal(err)
	}
	impostor := Key{Kind: KindRun, Config: Digest("evil"), Workload: k.Workload}
	src, _ := os.ReadFile(st.fileName(k, 1))
	if err := os.WriteFile(st.fileName(impostor, 1), src, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Get(impostor, 1); !isCorrupt(err) {
		t.Fatalf("Get renamed entry: %v, want *ErrCorrupt", err)
	}
}

func TestStoreWriteFaultInjection(t *testing.T) {
	st, _ := Open(t.TempDir())
	if err := fault.Arm(fault.Spec{Point: fault.PointCheckpointWrite, Mode: fault.ModeError}); err != nil {
		t.Fatal(err)
	}
	defer fault.Reset()
	k := testKey()
	if err := st.Put(k, Entry{Interval: 1, Payload: []byte("v")}); err == nil {
		t.Fatal("Put under an armed write fault did not error")
	}
	if st.Metrics().WriteErrors() != 1 {
		t.Fatalf("write error metric = %d, want 1", st.Metrics().WriteErrors())
	}
	fault.Reset()
	if err := st.Put(k, Entry{Interval: 1, Payload: []byte("v")}); err != nil {
		t.Fatalf("Put after disarm: %v", err)
	}
}

func TestStoreRejectsUnsafeDigests(t *testing.T) {
	st, _ := Open(t.TempDir())
	bad := Key{Kind: KindRun, Config: "../../etc", Workload: Digest("wl")}
	if err := st.Put(bad, Entry{Interval: 1, Payload: []byte("v")}); err == nil {
		t.Fatal("Put with a path-traversal digest did not error")
	}
	if _, err := st.Latest(bad); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Latest with unsafe digest: %v, want ErrNotFound", err)
	}
}

func isCorrupt(err error) bool {
	var c *ErrCorrupt
	return errors.As(err, &c)
}

// TestDecodeCorruptionIsAlwaysTyped is the deterministic companion to
// FuzzCheckpointRoundTrip: every single-bit flip and every truncation of
// a valid file fails with *ErrCorrupt or *ErrVersionMismatch. The CRC
// covers every byte, so no flip can decode silently; nothing panics.
func TestDecodeCorruptionIsAlwaysTyped(t *testing.T) {
	k := testKey()
	ent := Entry{Interval: 7, Accesses: 70_000, Payload: []byte("payload-bytes-for-corruption")}
	raw := encodeFile(k, ent)

	check := func(t *testing.T, mut []byte) {
		t.Helper()
		_, _, err := decodeFile("test", mut)
		if err == nil {
			t.Fatal("mutated file decoded without error")
		}
		var c *ErrCorrupt
		var vm *ErrVersionMismatch
		if !errors.As(err, &c) && !errors.As(err, &vm) {
			t.Fatalf("untyped decode error: %v", err)
		}
	}

	for i := range raw {
		for bit := 0; bit < 8; bit++ {
			mut := append([]byte(nil), raw...)
			mut[i] ^= 1 << bit
			check(t, mut)
		}
	}
	for n := 0; n < len(raw); n++ {
		check(t, append([]byte(nil), raw[:n]...))
	}
	// Appended garbage breaks the CRC-at-end framing too.
	check(t, append(append([]byte(nil), raw...), 0xEE))
}

// FuzzCheckpointRoundTrip mirrors the PR 3 trace-codec fuzz: arbitrary
// bytes must never panic the decoder, and every failure must be typed.
// Valid inputs (seeded from encodeFile) must round-trip exactly.
func FuzzCheckpointRoundTrip(f *testing.F) {
	k := testKey()
	f.Add(encodeFile(k, Entry{Interval: 1, Accesses: 10, Payload: []byte("seed")}))
	f.Add(encodeFile(Key{Kind: KindProfile, Config: Digest("c"), Workload: Digest("w")},
		Entry{Interval: 0, Accesses: 0, Payload: nil}))
	f.Add([]byte(magic))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		gk, ent, err := decodeFile("fuzz", data)
		if err != nil {
			var c *ErrCorrupt
			var vm *ErrVersionMismatch
			if !errors.As(err, &c) && !errors.As(err, &vm) {
				t.Fatalf("untyped decode error: %v", err)
			}
			return
		}
		// A successful decode must re-encode to the identical bytes:
		// the format has no slack for smuggled content.
		if got := encodeFile(gk, ent); string(got) != string(data) {
			t.Fatalf("decode/encode not idempotent")
		}
	})
}

func TestDigestJSONStability(t *testing.T) {
	type cfg struct{ A, B int }
	if DigestJSON(cfg{1, 2}) != DigestJSON(cfg{1, 2}) {
		t.Fatal("DigestJSON not deterministic")
	}
	if DigestJSON(cfg{1, 2}) == DigestJSON(cfg{2, 1}) {
		t.Fatal("DigestJSON ignored field values")
	}
	if len(Digest("a", "b")) != 16 {
		t.Fatalf("Digest length: %q", Digest("a", "b"))
	}
	if Digest("ab") == Digest("a", "b") {
		t.Fatal("Digest part separator is ambiguous")
	}
	if !strings.Contains(testKey().String(), "/") {
		t.Fatal("Key.String has no separators")
	}
}

// TestObserver: store lifecycle notifications fire for writes, write
// errors, corruption, and restore notes.
func TestObserver(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	type note struct{ op, key, detail string }
	var notes []note
	s.SetObserver(func(op, key, detail string, err error) {
		notes = append(notes, note{op, key, detail})
	})
	k := testKey()
	if err := s.Put(k, Entry{Interval: 3, Payload: []byte("x")}); err != nil {
		t.Fatal(err)
	}
	if len(notes) != 1 || notes[0].op != "write" || notes[0].key != k.String() || notes[0].detail != "interval=3" {
		t.Fatalf("after Put: %+v", notes)
	}
	// Corrupt the file on disk; the next read must notify "corrupt".
	ents := s.entriesFor(k)
	if len(ents) != 1 {
		t.Fatalf("entries = %+v", ents)
	}
	data, _ := os.ReadFile(ents[0].path)
	data[len(data)-1] ^= 0xFF
	os.WriteFile(ents[0].path, data, 0o644)
	if _, err := s.Latest(k); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Latest on corrupt = %v", err)
	}
	if notes[len(notes)-1].op != "corrupt" {
		t.Fatalf("after corrupt read: %+v", notes)
	}
	s.NoteRestored(7)
	s.NoteRestoreFailed()
	if notes[len(notes)-1].op != "restore_failed" || notes[len(notes)-2].op != "restore" {
		t.Fatalf("after notes: %+v", notes)
	}
	s.SetObserver(nil)
	s.NoteRestored(1)
	if notes[len(notes)-1].op != "restore_failed" {
		t.Fatalf("observer fired after removal: %+v", notes)
	}
}
