package wire

import (
	"math"
	"testing"
)

type mixedCounters struct {
	A uint64
	B uint64
	C float64
	D uint64
}

func TestNumStructRoundTrip(t *testing.T) {
	in := mixedCounters{A: 1, B: 1 << 40, C: -0.0625, D: math.MaxUint64}
	var enc Encoder
	enc.NumStruct(&in)

	var out mixedCounters
	d := NewDecoder(enc.Bytes())
	d.NumStruct(&out)
	if err := d.Err(); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if out != in {
		t.Fatalf("round trip mismatch: got %+v want %+v", out, in)
	}
}

// Float fields must survive bit-exactly, including non-finite values
// and signed zero: restored profiles feed byte-identical resumed runs.
func TestNumStructFloatBits(t *testing.T) {
	for _, f := range []float64{0, math.Copysign(0, -1), math.Inf(1), math.NaN(), 3.14159e-300} {
		in := mixedCounters{C: f}
		var enc Encoder
		enc.NumStruct(&in)
		var out mixedCounters
		d := NewDecoder(enc.Bytes())
		d.NumStruct(&out)
		if err := d.Err(); err != nil {
			t.Fatalf("decode %v: %v", f, err)
		}
		if math.Float64bits(out.C) != math.Float64bits(in.C) {
			t.Fatalf("float bits changed: got %x want %x",
				math.Float64bits(out.C), math.Float64bits(in.C))
		}
	}
}

// An artifact written with a different field count must latch a decode
// error, not panic: old profiles degrade to a rebuild.
func TestNumStructFieldCountMismatch(t *testing.T) {
	var enc Encoder
	enc.U64(3) // claims 3 fields; mixedCounters has 4
	enc.U64(1)
	enc.U64(2)
	enc.U64(3)

	var out mixedCounters
	d := NewDecoder(enc.Bytes())
	d.NumStruct(&out)
	if d.Err() == nil {
		t.Fatal("expected decode error on field-count mismatch")
	}
}

func TestNumStructRejectsOtherKinds(t *testing.T) {
	type bad struct {
		A uint64
		B int32
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on non-uint64/float64 field")
		}
	}()
	var enc Encoder
	enc.NumStruct(&bad{})
}
