// Package wire implements the minimal binary encoding shared by every
// durable simulator artifact: machine checkpoints, sampling profiles,
// and the checkpoint store's file headers. It is deliberately a leaf
// package (stdlib only, no repo imports) so that cache, core, sim, and
// sample can all encode their own state without import cycles.
//
// The format is byte-oriented and self-delimiting: unsigned integers
// are uvarints, floats are fixed 8-byte little-endian IEEE-754 bit
// patterns (so restored float64 state is bit-identical, a requirement
// for byte-identical resumed runs), and byte strings are
// length-prefixed. There is no field tagging: readers and writers must
// agree on layout, which the enclosing checkpoint format version pins.
//
// Decoding is hardened against corrupt input: every read checks the
// remaining buffer, declared lengths are bounded by the bytes actually
// present before any allocation, and the first failure latches into a
// sticky *DecodeError so callers can decode a whole structure and
// check Err() once.
package wire

import (
	"encoding/binary"
	"fmt"
	"math"
	"reflect"
)

// Encoder appends values to a growing buffer. The zero value is ready
// to use; Reset allows buffer reuse across checkpoints.
type Encoder struct {
	buf []byte
}

// Reset truncates the buffer, keeping its capacity for reuse.
func (e *Encoder) Reset() { e.buf = e.buf[:0] }

// Bytes returns the encoded buffer. The slice aliases the encoder's
// storage and is invalidated by further writes or Reset.
func (e *Encoder) Bytes() []byte { return e.buf }

// Len returns the number of encoded bytes.
func (e *Encoder) Len() int { return len(e.buf) }

// U64 appends v as a uvarint.
func (e *Encoder) U64(v uint64) { e.buf = binary.AppendUvarint(e.buf, v) }

// I64 appends v zigzag-encoded, so small negative values stay short.
func (e *Encoder) I64(v int64) { e.buf = binary.AppendVarint(e.buf, v) }

// F64 appends v as its fixed 8-byte little-endian bit pattern.
func (e *Encoder) F64(v float64) {
	e.buf = binary.LittleEndian.AppendUint64(e.buf, math.Float64bits(v))
}

// Bool appends a single 0/1 byte.
func (e *Encoder) Bool(v bool) {
	if v {
		e.buf = append(e.buf, 1)
	} else {
		e.buf = append(e.buf, 0)
	}
}

// Byte appends one raw byte.
func (e *Encoder) Byte(b byte) { e.buf = append(e.buf, b) }

// Raw appends p length-prefixed.
func (e *Encoder) Raw(p []byte) {
	e.U64(uint64(len(p)))
	e.buf = append(e.buf, p...)
}

// Str appends s length-prefixed.
func (e *Encoder) Str(s string) {
	e.U64(uint64(len(s)))
	e.buf = append(e.buf, s...)
}

// U64s appends a length-prefixed slice of uvarints.
func (e *Encoder) U64s(v []uint64) {
	e.U64(uint64(len(v)))
	for _, x := range v {
		e.U64(x)
	}
}

// F64s appends a length-prefixed slice of fixed float64s.
func (e *Encoder) F64s(v []float64) {
	e.U64(uint64(len(v)))
	for _, x := range v {
		e.F64(x)
	}
}

// U64Struct appends every field of a struct whose fields are all
// uint64, in declaration order. It panics on any other field type:
// that is a codec bug (a counter struct grew a non-uint64 field and
// the codec must be updated by hand), not a data error. Used for
// core.Metrics and sim.Interval so that adding a counter field can
// never silently drop it from checkpoints.
func (e *Encoder) U64Struct(v any) {
	rv := reflect.ValueOf(v)
	if rv.Kind() == reflect.Pointer {
		rv = rv.Elem()
	}
	if rv.Kind() != reflect.Struct {
		panic(fmt.Sprintf("wire: U64Struct on %s", rv.Kind()))
	}
	n := rv.NumField()
	e.U64(uint64(n))
	for i := 0; i < n; i++ {
		f := rv.Field(i)
		if f.Kind() != reflect.Uint64 {
			panic(fmt.Sprintf("wire: U64Struct field %s.%s is %s, not uint64",
				rv.Type().Name(), rv.Type().Field(i).Name, f.Kind()))
		}
		e.U64(f.Uint())
	}
}

// NumStruct appends every field of a struct whose fields are all
// uint64 or float64, in declaration order (uint64 as uvarint, float64
// as its fixed 8-byte bit pattern). Like U64Struct it panics on any
// other field type: that is a codec bug, not a data error. Used for
// sim.Interval, whose counter deltas grew a float64 energy field —
// adding a field can never silently drop it from persisted profiles
// (the field count is encoded, so older artifacts fail decode and are
// rebuilt).
func (e *Encoder) NumStruct(v any) {
	rv := reflect.ValueOf(v)
	if rv.Kind() == reflect.Pointer {
		rv = rv.Elem()
	}
	if rv.Kind() != reflect.Struct {
		panic(fmt.Sprintf("wire: NumStruct on %s", rv.Kind()))
	}
	n := rv.NumField()
	e.U64(uint64(n))
	for i := 0; i < n; i++ {
		f := rv.Field(i)
		switch f.Kind() {
		case reflect.Uint64:
			e.U64(f.Uint())
		case reflect.Float64:
			e.F64(f.Float())
		default:
			panic(fmt.Sprintf("wire: NumStruct field %s.%s is %s, not uint64 or float64",
				rv.Type().Name(), rv.Type().Field(i).Name, f.Kind()))
		}
	}
}

// DecodeError reports the first malformed read of a Decoder: the byte
// offset it happened at and why. The checkpoint store maps any
// DecodeError to its typed ErrCorrupt.
type DecodeError struct {
	Off    int
	Reason string
}

func (e *DecodeError) Error() string {
	return fmt.Sprintf("wire: offset %d: %s", e.Off, e.Reason)
}

// Decoder reads values sequentially from a buffer. The first failure
// latches: every subsequent read returns zero values and Err() reports
// the original *DecodeError.
type Decoder struct {
	buf []byte
	off int
	err *DecodeError
}

// NewDecoder returns a decoder over p. The decoder does not copy p.
func NewDecoder(p []byte) *Decoder { return &Decoder{buf: p} }

// Err returns the latched decode failure, or nil.
func (d *Decoder) Err() error {
	if d.err == nil {
		return nil
	}
	return d.err
}

// Rest returns the undecoded remainder of the buffer.
func (d *Decoder) Rest() []byte { return d.buf[d.off:] }

func (d *Decoder) fail(reason string) {
	if d.err == nil {
		d.err = &DecodeError{Off: d.off, Reason: reason}
	}
}

// U64 reads one uvarint.
func (d *Decoder) U64() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.buf[d.off:])
	if n <= 0 {
		d.fail("truncated or overlong uvarint")
		return 0
	}
	d.off += n
	return v
}

// I64 reads one zigzag varint.
func (d *Decoder) I64() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.buf[d.off:])
	if n <= 0 {
		d.fail("truncated or overlong varint")
		return 0
	}
	d.off += n
	return v
}

// F64 reads one fixed 8-byte float64.
func (d *Decoder) F64() float64 {
	if d.err != nil {
		return 0
	}
	if d.off+8 > len(d.buf) {
		d.fail("truncated float64")
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(d.buf[d.off:]))
	d.off += 8
	return v
}

// Bool reads one 0/1 byte; any other value is corruption.
func (d *Decoder) Bool() bool {
	switch d.Byte() {
	case 0:
		return false
	case 1:
		return true
	default:
		d.fail("bool byte out of range")
		return false
	}
}

// Byte reads one raw byte.
func (d *Decoder) Byte() byte {
	if d.err != nil {
		return 0
	}
	if d.off >= len(d.buf) {
		d.fail("truncated byte")
		return 0
	}
	b := d.buf[d.off]
	d.off++
	return b
}

// Length reads a count prefix and bounds it: each element occupies at
// least min bytes, so a declared count larger than the remaining
// buffer divided by min is corruption, caught (and latched) before any
// allocation.
func (d *Decoder) Length(min int) int {
	n := d.U64()
	if d.err != nil {
		return 0
	}
	if rem := len(d.buf) - d.off; n > uint64(rem/min) {
		d.fail(fmt.Sprintf("declared length %d exceeds remaining %d bytes", n, rem))
		return 0
	}
	return int(n)
}

// Raw reads one length-prefixed byte string. The result is a copy.
func (d *Decoder) Raw() []byte {
	n := d.Length(1)
	if d.err != nil || n == 0 {
		return nil
	}
	out := make([]byte, n)
	copy(out, d.buf[d.off:d.off+n])
	d.off += n
	return out
}

// Str reads one length-prefixed string.
func (d *Decoder) Str() string {
	n := d.Length(1)
	if d.err != nil || n == 0 {
		return ""
	}
	s := string(d.buf[d.off : d.off+n])
	d.off += n
	return s
}

// U64s reads one length-prefixed uvarint slice.
func (d *Decoder) U64s() []uint64 {
	n := d.Length(1)
	if d.err != nil || n == 0 {
		return nil
	}
	out := make([]uint64, n)
	for i := range out {
		out[i] = d.U64()
	}
	if d.err != nil {
		return nil
	}
	return out
}

// F64s reads one length-prefixed fixed-float64 slice.
func (d *Decoder) F64s() []float64 {
	n := d.Length(8)
	if d.err != nil || n == 0 {
		return nil
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = d.F64()
	}
	if d.err != nil {
		return nil
	}
	return out
}

// U64Struct fills a struct of uint64 fields written by
// Encoder.U64Struct. A field-count mismatch (the struct changed shape
// since the artifact was written) is a decode error, not a panic: old
// checkpoints must degrade to cold start, not crash the process.
func (d *Decoder) U64Struct(v any) {
	rv := reflect.ValueOf(v)
	if rv.Kind() != reflect.Pointer || rv.Elem().Kind() != reflect.Struct {
		panic("wire: U64Struct decode needs a struct pointer")
	}
	rv = rv.Elem()
	n := rv.NumField()
	got := d.U64()
	if d.err != nil {
		return
	}
	if got != uint64(n) {
		d.fail(fmt.Sprintf("struct %s has %d fields, artifact has %d",
			rv.Type().Name(), n, got))
		return
	}
	for i := 0; i < n; i++ {
		f := rv.Field(i)
		if f.Kind() != reflect.Uint64 {
			panic(fmt.Sprintf("wire: U64Struct field %s.%s is %s, not uint64",
				rv.Type().Name(), rv.Type().Field(i).Name, f.Kind()))
		}
		f.SetUint(d.U64())
	}
}

// NumStruct fills a struct of uint64/float64 fields written by
// Encoder.NumStruct. As with U64Struct, a field-count mismatch is a
// decode error (old artifacts degrade to a rebuild, not a crash) while
// an unsupported field kind is a codec-bug panic.
func (d *Decoder) NumStruct(v any) {
	rv := reflect.ValueOf(v)
	if rv.Kind() != reflect.Pointer || rv.Elem().Kind() != reflect.Struct {
		panic("wire: NumStruct decode needs a struct pointer")
	}
	rv = rv.Elem()
	n := rv.NumField()
	got := d.U64()
	if d.err != nil {
		return
	}
	if got != uint64(n) {
		d.fail(fmt.Sprintf("struct %s has %d fields, artifact has %d",
			rv.Type().Name(), n, got))
		return
	}
	for i := 0; i < n; i++ {
		f := rv.Field(i)
		switch f.Kind() {
		case reflect.Uint64:
			f.SetUint(d.U64())
		case reflect.Float64:
			f.SetFloat(d.F64())
		default:
			panic(fmt.Sprintf("wire: NumStruct field %s.%s is %s, not uint64 or float64",
				rv.Type().Name(), rv.Type().Field(i).Name, f.Kind()))
		}
	}
}
