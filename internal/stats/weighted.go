package stats

import "math"

// Weighted helpers for frequency-weighted samples: weight w_i means
// "x_i was observed w_i times". The sampled simulator uses them to
// extrapolate cluster-representative measurements (weight = cluster
// size) and to turn cluster dispersion into per-metric confidence.

// WeightedMean returns Σ w_i x_i / Σ w_i, or 0 when the total weight is
// zero. It panics when the slices differ in length.
func WeightedMean(xs []float64, ws []float64) float64 {
	if len(xs) != len(ws) {
		panic("stats: WeightedMean length mismatch")
	}
	var sum, wsum float64
	for i, x := range xs {
		sum += ws[i] * x
		wsum += ws[i]
	}
	if wsum == 0 {
		return 0
	}
	return sum / wsum
}

// WeightedVariance returns the frequency-weighted unbiased sample
// variance Σ w_i (x_i − μ)² / (Σ w_i − 1), where μ is the weighted
// mean. It returns 0 when the total weight is ≤ 1 (a single effective
// observation has no dispersion).
func WeightedVariance(xs []float64, ws []float64) float64 {
	if len(xs) != len(ws) {
		panic("stats: WeightedVariance length mismatch")
	}
	var wsum float64
	for _, w := range ws {
		wsum += w
	}
	if wsum <= 1 {
		return 0
	}
	mu := WeightedMean(xs, ws)
	var m2 float64
	for i, x := range xs {
		d := x - mu
		m2 += ws[i] * d * d
	}
	return m2 / (wsum - 1)
}

// WeightedStd returns the square root of WeightedVariance.
func WeightedStd(xs []float64, ws []float64) float64 {
	return math.Sqrt(WeightedVariance(xs, ws))
}

// RelCI95 converts a standard error into a relative 95% half-width:
// 1.96·se/|mean|. It returns 0 when the mean is zero (no meaningful
// relative scale) or the standard error is not finite.
func RelCI95(mean, se float64) float64 {
	if mean == 0 || math.IsNaN(se) || math.IsInf(se, 0) {
		return 0
	}
	return 1.96 * se / math.Abs(mean)
}
