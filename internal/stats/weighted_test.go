package stats

import (
	"math"
	"testing"
)

func approx(t *testing.T, name string, got, want float64) {
	t.Helper()
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("%s = %.12f, want %.12f", name, got, want)
	}
}

func TestWeightedMean(t *testing.T) {
	// By hand: (2·1 + 3·10 + 5·4) / (2+3+5) = (2+30+20)/10 = 5.2.
	got := WeightedMean([]float64{1, 10, 4}, []float64{2, 3, 5})
	approx(t, "WeightedMean", got, 5.2)

	// Unit weights reduce to the plain mean.
	approx(t, "WeightedMean(unit)", WeightedMean([]float64{1, 2, 3}, []float64{1, 1, 1}), 2)

	// Zero total weight is defined as 0.
	approx(t, "WeightedMean(zero)", WeightedMean([]float64{7}, []float64{0}), 0)
}

func TestWeightedVariance(t *testing.T) {
	// By hand with xs={1,10,4}, ws={2,3,5}: μ=5.2,
	// Σw(x−μ)² = 2·(−4.2)² + 3·4.8² + 5·(−1.2)²
	//          = 2·17.64 + 3·23.04 + 5·1.44 = 35.28 + 69.12 + 7.2 = 111.6,
	// variance = 111.6 / (10−1) = 12.4.
	got := WeightedVariance([]float64{1, 10, 4}, []float64{2, 3, 5})
	approx(t, "WeightedVariance", got, 12.4)
	approx(t, "WeightedStd", WeightedStd([]float64{1, 10, 4}, []float64{2, 3, 5}), math.Sqrt(12.4))

	// Unit weights reduce to the unbiased sample variance:
	// xs={2,4,6}: μ=4, Σ(x−μ)²=8, 8/2=4.
	approx(t, "WeightedVariance(unit)", WeightedVariance([]float64{2, 4, 6}, []float64{1, 1, 1}), 4)

	// A single effective observation has no dispersion.
	approx(t, "WeightedVariance(w=1)", WeightedVariance([]float64{9}, []float64{1}), 0)
}

func TestWeightedExpansionEquivalence(t *testing.T) {
	// Integer weights must agree with literally repeating each sample.
	xs, ws := []float64{1.5, -2, 0.25}, []float64{3, 1, 2}
	var s Stream
	for i, x := range xs {
		for k := 0; k < int(ws[i]); k++ {
			s.Add(x)
		}
	}
	approx(t, "mean vs expansion", WeightedMean(xs, ws), s.Mean())
	approx(t, "variance vs expansion", WeightedVariance(xs, ws), s.Variance())
}

func TestRelCI95(t *testing.T) {
	// By hand: 1.96·0.5/|−4| = 0.245.
	approx(t, "RelCI95", RelCI95(-4, 0.5), 0.245)
	approx(t, "RelCI95(zero mean)", RelCI95(0, 1), 0)
	approx(t, "RelCI95(NaN se)", RelCI95(2, math.NaN()), 0)
}

func TestWeightedPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("WeightedMean did not panic on length mismatch")
		}
	}()
	WeightedMean([]float64{1}, []float64{1, 2})
}
