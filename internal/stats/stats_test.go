package stats

import (
	"math"
	"math/rand/v2"
	"strings"
	"testing"
	"testing/quick"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestStreamBasics(t *testing.T) {
	var s Stream
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(x)
	}
	if s.N() != 8 || !almost(s.Mean(), 5, 1e-12) {
		t.Fatalf("n=%d mean=%v", s.N(), s.Mean())
	}
	// Sample variance of this classic dataset is 32/7.
	if !almost(s.Variance(), 32.0/7, 1e-9) {
		t.Fatalf("variance = %v", s.Variance())
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Fatalf("min/max = %v/%v", s.Min(), s.Max())
	}
}

func TestEmptyAndSingle(t *testing.T) {
	var s Stream
	if s.Mean() != 0 || s.Std() != 0 || s.CI95Radius() != 0 {
		t.Fatal("empty stream must be all zeros")
	}
	s.Add(3)
	if s.Mean() != 3 || s.Variance() != 0 || s.CI95Radius() != 0 {
		t.Fatal("single observation stats wrong")
	}
	if s.Min() != 3 || s.Max() != 3 {
		t.Fatal("single observation extremes wrong")
	}
}

func TestSummarize(t *testing.T) {
	sum := Summarize([]float64{1, 2, 3})
	if sum.N != 3 || !almost(sum.Mean, 2, 1e-12) || !almost(sum.Std, 1, 1e-12) {
		t.Fatalf("summary: %+v", sum)
	}
	// df=2 -> t=4.303; radius = 4.303*1/sqrt(3).
	want := 4.303 / math.Sqrt(3)
	if !almost(sum.CI95Radius, want, 1e-9) {
		t.Fatalf("CI radius = %v, want %v", sum.CI95Radius, want)
	}
	if !strings.Contains(sum.String(), "n=3") {
		t.Fatalf("String: %s", sum.String())
	}
}

func TestTCrit(t *testing.T) {
	if tCrit95(1) != 12.706 || tCrit95(30) != 2.042 {
		t.Fatal("t table drifted")
	}
	if tCrit95(1000) != 1.960 {
		t.Fatal("asymptotic t wrong")
	}
	if !math.IsInf(tCrit95(0), 1) {
		t.Fatal("df=0 must be infinite")
	}
}

// Property: Welford agrees with the two-pass computation.
func TestPropertyWelfordMatchesTwoPass(t *testing.T) {
	f := func(seed uint64, n uint8) bool {
		rng := rand.New(rand.NewPCG(seed, 51))
		m := int(n%50) + 2
		xs := make([]float64, m)
		var s Stream
		for i := range xs {
			xs[i] = rng.Float64()*100 - 50
			s.Add(xs[i])
		}
		mean := 0.0
		for _, x := range xs {
			mean += x
		}
		mean /= float64(m)
		varSum := 0.0
		for _, x := range xs {
			varSum += (x - mean) * (x - mean)
		}
		variance := varSum / float64(m-1)
		return almost(s.Mean(), mean, 1e-9) && almost(s.Variance(), variance, 1e-6)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: the CI radius shrinks as the sample grows (for iid data).
func TestPropertyCIShrinks(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 9))
	var s Stream
	var prev float64
	for i := 0; i < 200; i++ {
		s.Add(rng.NormFloat64())
		if i == 9 {
			prev = s.CI95Radius()
		}
	}
	if s.CI95Radius() >= prev {
		t.Fatalf("CI did not shrink: %v -> %v", prev, s.CI95Radius())
	}
}

func TestQuantile(t *testing.T) {
	sum := Summarize([]float64{4, 1, 3, 2}) // unsorted input: Summarize sorts
	cases := []struct{ p, want float64 }{
		{0, 1}, {1, 4}, {0.5, 2.5}, {0.25, 1.75}, {0.75, 3.25},
		{-0.5, 1}, {1.5, 4}, // out-of-range p clamps
	}
	for _, c := range cases {
		if got := sum.Quantile(c.p); !almost(got, c.want, 1e-12) {
			t.Errorf("Quantile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if got := sum.Median(); !almost(got, 2.5, 1e-12) {
		t.Errorf("Median = %v, want 2.5", got)
	}
}

func TestQuantileSingleAndEmpty(t *testing.T) {
	if got := Summarize([]float64{7}).Quantile(0.95); got != 7 {
		t.Errorf("single-sample quantile = %v, want 7", got)
	}
	if got := Summarize(nil).Quantile(0.5); got != 0 {
		t.Errorf("empty quantile = %v, want 0", got)
	}
	// Stream-built summaries retain no sample: quantiles are unavailable.
	var s Stream
	s.Add(1)
	s.Add(2)
	if got := s.Summary().Median(); got != 0 {
		t.Errorf("stream summary median = %v, want 0", got)
	}
}

func TestSummarizeDoesNotMutateInput(t *testing.T) {
	xs := []float64{3, 1, 2}
	Summarize(xs)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatalf("Summarize reordered its input: %v", xs)
	}
}

// Property: Quantile is monotone in p and bounded by [Min, Max].
func TestPropertyQuantileMonotone(t *testing.T) {
	rng := rand.New(rand.NewPCG(11, 7))
	xs := make([]float64, 101)
	for i := range xs {
		xs[i] = rng.NormFloat64() * 10
	}
	sum := Summarize(xs)
	prev := math.Inf(-1)
	for p := 0.0; p <= 1.0; p += 0.01 {
		q := sum.Quantile(p)
		if q < prev {
			t.Fatalf("Quantile not monotone at p=%v: %v < %v", p, q, prev)
		}
		if q < sum.Min || q > sum.Max {
			t.Fatalf("Quantile(%v)=%v outside [%v,%v]", p, q, sum.Min, sum.Max)
		}
		prev = q
	}
}
