// Package stats provides the small statistical toolkit the experiment
// harness uses for multi-seed stability studies: streaming (Welford)
// moments, summaries, and Student-t confidence intervals. The paper
// reports single long runs; our shorter synthetic runs instead quantify
// run-to-run variation across workload seeds (Ext. Seeds).
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Stream accumulates moments online via Welford's algorithm; the zero
// value is ready to use.
type Stream struct {
	n        int
	mean, m2 float64
	min, max float64
}

// Add incorporates one observation.
func (s *Stream) Add(x float64) {
	s.n++
	if s.n == 1 {
		s.min, s.max = x, x
	} else {
		if x < s.min {
			s.min = x
		}
		if x > s.max {
			s.max = x
		}
	}
	d := x - s.mean
	s.mean += d / float64(s.n)
	s.m2 += d * (x - s.mean)
}

// N returns the observation count.
func (s *Stream) N() int { return s.n }

// Mean returns the running mean (0 when empty).
func (s *Stream) Mean() float64 { return s.mean }

// Variance returns the unbiased sample variance.
func (s *Stream) Variance() float64 {
	if s.n < 2 {
		return 0
	}
	return s.m2 / float64(s.n-1)
}

// Std returns the sample standard deviation.
func (s *Stream) Std() float64 { return math.Sqrt(s.Variance()) }

// Min and Max return the extremes (0 when empty).
func (s *Stream) Min() float64 { return s.min }

// Max returns the maximum observation.
func (s *Stream) Max() float64 { return s.max }

// Summary freezes a stream's statistics.
type Summary struct {
	N          int
	Mean, Std  float64
	Min, Max   float64
	CI95Radius float64

	// sorted retains the sample (ascending) when the summary was built by
	// Summarize, enabling Quantile/Median. Stream.Summary leaves it nil —
	// a Welford stream keeps only moments, so its summaries have no
	// quantiles.
	sorted []float64
}

// Summarize computes the summary of a sample, retaining a sorted copy so
// Quantile and Median are available.
func Summarize(xs []float64) Summary {
	var s Stream
	for _, x := range xs {
		s.Add(x)
	}
	sum := s.Summary()
	sum.sorted = append([]float64(nil), xs...)
	sort.Float64s(sum.sorted)
	return sum
}

// Quantile returns the p-quantile (0 <= p <= 1) of the retained sample
// by linear interpolation between order statistics, or 0 when the
// summary retains no sample (empty input, or a Stream-built summary —
// streams keep only moments). p outside [0,1] is clamped.
func (s Summary) Quantile(p float64) float64 {
	if len(s.sorted) == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	pos := p * float64(len(s.sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s.sorted[lo]
	}
	frac := pos - float64(lo)
	return s.sorted[lo]*(1-frac) + s.sorted[hi]*frac
}

// Median returns the 0.5-quantile of the retained sample.
func (s Summary) Median() float64 { return s.Quantile(0.5) }

// Summary freezes the stream.
func (s *Stream) Summary() Summary {
	return Summary{
		N: s.n, Mean: s.Mean(), Std: s.Std(),
		Min: s.min, Max: s.max,
		CI95Radius: s.CI95Radius(),
	}
}

// CI95Radius returns the half-width of the 95% confidence interval of
// the mean, using the Student-t critical value for small samples.
func (s *Stream) CI95Radius() float64 {
	if s.n < 2 {
		return 0
	}
	return tCrit95(s.n-1) * s.Std() / math.Sqrt(float64(s.n))
}

// String renders "mean ± radius [min, max] (n)".
func (s Summary) String() string {
	return fmt.Sprintf("%.3f±%.3f [%.3f,%.3f] (n=%d)", s.Mean, s.CI95Radius, s.Min, s.Max, s.N)
}

// tCrit95 returns the two-sided 95% Student-t critical value for df
// degrees of freedom (exact table through 30, asymptote beyond).
func tCrit95(df int) float64 {
	table := []float64{ // df 1..30
		12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
		2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
		2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
	}
	if df <= 0 {
		return math.Inf(1)
	}
	if df <= len(table) {
		return table[df-1]
	}
	return 1.960
}
