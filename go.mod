module repro

go 1.23
