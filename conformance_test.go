package lap

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/experiments"
)

// TestEveryPolicyConforms walks the registry itself — not a hand-kept
// list — so a policy registered tomorrow is automatically held to the
// same contract: it runs end to end through lap.Run (with a hybrid LLC
// when its capability flags demand one), labels its Result with the
// canonical name, emits per-interval telemetry, and appears in the
// lapexp policy-description table.
func TestEveryPolicyConforms(t *testing.T) {
	table4 := experiments.Table4(experiments.Quick())
	var rendered bytes.Buffer
	table4.Fprint(&rendered)

	for _, info := range core.Policies() {
		info := info
		t.Run(info.Name, func(t *testing.T) {
			cfg := smallConfig()
			if info.NeedsHybridLLC {
				cfg = cfg.WithHybridL3()
			}
			var intervals int
			tel := &Telemetry{Interval: 4000, OnInterval: func(Interval) { intervals++ }}
			res, err := RunObserved(cfg, Policy(info.Name), smallMix(), 20000, 1, tel)
			if err != nil {
				t.Fatalf("RunObserved(%s): %v", info.Name, err)
			}
			if res.Policy != info.Name {
				t.Errorf("result labelled %q, want canonical %q", res.Policy, info.Name)
			}
			if res.Met.L3Accesses == 0 || res.Cycles == 0 {
				t.Errorf("implausible result for %s: %+v", info.Name, res.Met)
			}
			if intervals == 0 {
				t.Errorf("%s emitted no telemetry intervals", info.Name)
			}
			if !strings.Contains(rendered.String(), info.Name) {
				t.Errorf("%s missing from the Table 4 policy listing", info.Name)
			}
		})
	}
}
